//! Counter-based bulk sampling: position-indexed uniform and Gaussian
//! streams.
//!
//! [`crate::Rng`] (xoshiro256\*\*) is a *sequential* generator: sample `i+1`
//! cannot start before sample `i` finished, and its Box–Muller path pays two
//! `f64` libm calls per pair. That is fine for scalar draws, but since the
//! defense layer noises every parameter in place each round, bulk sampling
//! became the dominant per-round defense cost (~19 ns/element — an order of
//! magnitude slower than the matmul kernels it rides alongside).
//!
//! [`CbRng`] removes the sequential dependency: it is a Philox-style
//! counter-based generator (Salmon et al., "Parallel Random Numbers: As Easy
//! as 1, 2, 3", SC'11) whose output at position `i` is a pure function
//! `(key, i) → bits`. A bulk fill is then an embarrassingly parallel map
//! over positions, written as straight-line chunk loops over fixed-size
//! arrays that the compiler autovectorizes. All element math is `f32` with
//! explicit polynomial kernels ([`ln_1to1`]-style, see below) instead of
//! `f64` libm, so one Gaussian sample costs a handful of vector lanes.
//!
//! # Stream layout (the spec)
//!
//! The **scalar reference path is the spec**: [`CbRng::ref_uniform`] and
//! [`CbRng::ref_normal_pair`] define, element by element, exactly what every
//! bulk fill must produce; `tests` assert bit-identity between the chunked
//! and reference paths for every seed they try. The layout:
//!
//! * Counter block `b` (a `u64`) expands through Philox-2x64-10 to two
//!   output words `(y0, y1)`.
//! * Each word yields two 24-bit uniform lanes: bits `[40, 64)` and
//!   `[16, 40)`. Uniform element `i` therefore reads block `i / 4`,
//!   lane `i % 4`.
//! * Gaussian pair `p` reads block `p / 2`, word `p % 2`: `u1` from the
//!   high lane, `u2` from the low lane, mapped through Box–Muller
//!   (`z0 = r·cosθ`, `z1 = r·sinθ`). Gaussian element `i` is half `i % 2`
//!   of pair `i / 2` — so an odd-length fill simply discards the last
//!   `z1` instead of caching it (no `gauss_cache` hazard; see
//!   [`crate::Rng::fill_normal`]).
//!
//! # Determinism argument
//!
//! The chunked loops are *stage-split* (generate counters → Philox → lane
//! extraction → `ln`/`sqrt` → `sin`/`cos` → scale), but every stage applies
//! the same per-element scalar operation the reference path applies, and no
//! stage combines values across elements. Rust/LLVM never reassociates or
//! contracts float expressions, so splitting a per-element computation
//! across stage loops (or across SIMD lanes) cannot change any element's
//! bit pattern. Chunk boundaries select *when* an element is computed,
//! never *how* — the same argument `par` makes for partition boundaries.

/// Philox-2x64 multiplier (Random123's `PHILOX_M2x64_0`).
const PHILOX_M: u64 = 0xD2B7_4407_B1CE_6E93;
/// Philox Weyl key increment (the golden-ratio constant, as in Random123).
const PHILOX_W: u64 = 0x9E37_79B9_7F4A_7C15;
/// Philox rounds. 10 is Random123's recommended safety margin (BigCrush
/// passes from 6).
const PHILOX_ROUNDS: u32 = 10;

/// Scale mapping a 24-bit lane to `[0, 1)` with an exactly-representable
/// step.
const U24_SCALE: f32 = 1.0 / (1u32 << 24) as f32;

/// Gaussian samples per chunk of the stage-split fill loops. 128 normals =
/// 64 Box–Muller pairs = 32 Philox blocks; the stage arrays stay well under
/// 2 KiB so they live in L1 (and in registers once vectorized).
const CHUNK: usize = 128;
/// Box–Muller pairs per chunk.
const PAIRS: usize = CHUNK / 2;
/// Philox blocks per chunk.
const BLOCKS: usize = CHUNK / 4;

/// A counter-based (Philox-2x64-10) generator: a pure function from
/// `(key, position)` to output bits.
///
/// Keys are 128 bits: `key0` seeds the Philox round-key schedule and `key1`
/// occupies the second counter word, so distinct `(key0, key1)` pairs index
/// statistically independent streams. [`crate::Rng`] derives a fresh key
/// pair from its own (split-derived) state for every bulk fill, which ties
/// every bulk stream into the existing seed/split hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct CbRng {
    key0: u64,
    key1: u64,
}

/// One Philox-2x64 round: multiply-hi/lo mix of the counter word, keyed.
#[inline]
fn philox_round(x0: u64, x1: u64, k: u64) -> (u64, u64) {
    let prod = u128::from(x0) * u128::from(PHILOX_M);
    let hi = (prod >> 64) as u64;
    let lo = prod as u64;
    (hi ^ k ^ x1, lo)
}

impl CbRng {
    /// A generator for the stream identified by the 128-bit key.
    pub fn new(key0: u64, key1: u64) -> Self {
        CbRng { key0, key1 }
    }

    /// The two output words of counter block `b` (Philox-2x64-10).
    #[inline]
    pub fn block(&self, b: u64) -> [u64; 2] {
        let mut x0 = b;
        let mut x1 = self.key1;
        let mut k = self.key0;
        let mut r = 0;
        while r < PHILOX_ROUNDS {
            (x0, x1) = philox_round(x0, x1, k);
            k = k.wrapping_add(PHILOX_W);
            r += 1;
        }
        [x0, x1]
    }

    // ------------------------------------------------------------------
    // Scalar reference path — the spec for the chunked fills
    // ------------------------------------------------------------------

    /// Uniform element `i` of this stream, in `[0, 1)` (24-bit grid).
    pub fn ref_uniform(&self, i: usize) -> f32 {
        let y = self.block((i / 4) as u64);
        let word = y[(i / 2) & 1];
        lane_low(word, i & 1)
    }

    /// Box–Muller pair `p` of this stream: `(z0, z1)`, both standard
    /// normal. Gaussian element `i` is half `i % 2` of pair `i / 2`.
    pub fn ref_normal_pair(&self, p: usize) -> (f32, f32) {
        let y = self.block((p / 2) as u64);
        let word = y[p & 1];
        box_muller(lane_hi24(word), lane_mid24(word))
    }

    // ------------------------------------------------------------------
    // Chunked fills
    // ------------------------------------------------------------------

    /// Fills `out` with uniform samples in `[0, 1)`: element `i` is
    /// [`CbRng::ref_uniform`]`(i)`, computed in autovectorizable chunks.
    pub fn fill_uniform(&self, out: &mut [f32]) {
        let mut chunks = out.chunks_exact_mut(CHUNK);
        let mut base = 0usize;
        for chunk in &mut chunks {
            let mut lanes = [0i32; CHUNK];
            for (bi, quad) in lanes.chunks_exact_mut(4).enumerate() {
                let y = self.block(((base / 4) + bi) as u64);
                quad[0] = hi24_bits(y[0]);
                quad[1] = mid24_bits(y[0]);
                quad[2] = hi24_bits(y[1]);
                quad[3] = mid24_bits(y[1]);
            }
            for (o, &l) in chunk.iter_mut().zip(&lanes) {
                *o = l as f32 * U24_SCALE;
            }
            base += CHUNK;
        }
        for (i, o) in chunks.into_remainder().iter_mut().enumerate() {
            *o = self.ref_uniform(base + i);
        }
    }

    /// Maps `out` in place through `f(element_index, old, z)` where `z` is
    /// the standard normal sample at that position of this stream —
    /// bit-identical to driving [`CbRng::ref_normal_pair`] element by
    /// element. This one chunked loop backs overwriting fills
    /// (`f = |_, _, z| z·σ + µ`) and accumulating noise
    /// (`f = |_, x, z| x + z·σ`) without duplicating the sampler.
    #[inline]
    fn for_each_normal(&self, out: &mut [f32], f: impl Fn(f32, f32) -> f32) {
        let mut chunks = out.chunks_exact_mut(CHUNK);
        let mut base = 0usize;
        for chunk in &mut chunks {
            // Stage 1 (scalar integer): Philox blocks -> 24-bit lanes.
            let mut u1 = [0i32; PAIRS];
            let mut u2 = [0i32; PAIRS];
            for bi in 0..BLOCKS {
                let y = self.block(((base / 4) + bi) as u64);
                u1[2 * bi] = hi24_bits(y[0]);
                u2[2 * bi] = mid24_bits(y[0]);
                u1[2 * bi + 1] = hi24_bits(y[1]);
                u2[2 * bi + 1] = mid24_bits(y[1]);
            }
            // Stage 2 (vectorizable): radius r = sqrt(-2 ln u1).
            let mut r = [0.0f32; PAIRS];
            for (ri, &l) in r.iter_mut().zip(&u1) {
                *ri = radius(l);
            }
            // Stage 3 (vectorizable): angle factors cos θ, sin θ.
            let mut cv = [0.0f32; PAIRS];
            let mut sv = [0.0f32; PAIRS];
            for ((ci, si), &l) in cv.iter_mut().zip(&mut sv).zip(&u2) {
                (*ci, *si) = cos_sin_turn(l);
            }
            // Stage 4 (vectorizable): interleave z0 = r·cosθ, z1 = r·sinθ.
            for (p, pair) in chunk.chunks_exact_mut(2).enumerate() {
                pair[0] = f(pair[0], r[p] * cv[p]);
                pair[1] = f(pair[1], r[p] * sv[p]);
            }
            base += CHUNK;
        }
        let tail = chunks.into_remainder();
        for (i, o) in tail.iter_mut().enumerate() {
            let idx = base + i;
            let (z0, z1) = self.ref_normal_pair(idx / 2);
            let z = if idx % 2 == 0 { z0 } else { z1 };
            *o = f(*o, z);
        }
    }

    /// Overwrites `out` with `N(mean, std_dev²)` samples from this stream.
    pub fn fill_normal(&self, out: &mut [f32], mean: f32, std_dev: f32) {
        self.for_each_normal(out, |_, z| z * std_dev + mean);
    }

    /// Adds `std_dev · z_i` to each element of `out` (`z_i` standard
    /// normal). Negating `std_dev` negates every contribution exactly
    /// (IEEE `(-σ)·z = -(σ·z)`), which is what the pairwise SA masks rely
    /// on to cancel.
    pub fn axpy_normal(&self, out: &mut [f32], std_dev: f32) {
        self.for_each_normal(out, |x, z| x + z * std_dev);
    }
}

// ----------------------------------------------------------------------
// Lane extraction
// ----------------------------------------------------------------------

/// Bits `[40, 64)` of a Philox word as an `i32` in `[0, 2^24)`.
#[inline]
fn hi24_bits(y: u64) -> i32 {
    (y >> 40) as i32
}

/// Bits `[16, 40)` of a Philox word as an `i32` in `[0, 2^24)`.
#[inline]
fn mid24_bits(y: u64) -> i32 {
    ((y >> 16) & 0xFF_FFFF) as i32
}

/// Lane `half` (0 = high, 1 = mid) of `word`, scaled to `[0, 1)`.
#[inline]
fn lane_low(word: u64, half: usize) -> f32 {
    let bits = if half == 0 {
        hi24_bits(word)
    } else {
        mid24_bits(word)
    };
    bits as f32 * U24_SCALE
}

#[inline]
fn lane_hi24(word: u64) -> i32 {
    hi24_bits(word)
}

#[inline]
fn lane_mid24(word: u64) -> i32 {
    mid24_bits(word)
}

// ----------------------------------------------------------------------
// Per-element math kernels (shared by the chunked and reference paths)
// ----------------------------------------------------------------------

/// Box–Muller radius from the 24-bit `u1` lane: `sqrt(-2 ln(1 - u1/2^24))`.
///
/// `1 - u` is exact on the 24-bit grid, lands in `(0, 1]`, and bounds the
/// radius at `sqrt(-2 ln 2^-24) ≈ 5.77`.
#[inline]
fn radius(u1_bits: i32) -> f32 {
    let u1 = 1.0 - u1_bits as f32 * U24_SCALE;
    (-2.0 * ln_unit(u1)).sqrt()
}

/// `(cos θ, sin θ)` for `θ = 2π·u2/2^24`, via quadrant reduction on the
/// exact scale `a = u2/2^22 ∈ [0, 4)`.
#[inline]
fn cos_sin_turn(u2_bits: i32) -> (f32, f32) {
    // a = 4·u ∈ [0, 4): quadrant q plus fraction f, φ = f·π/2 ∈ [0, π/2).
    let a = u2_bits as f32 * (4.0 * U24_SCALE);
    let q = a as i32; // truncation == floor on [0, 4)
    let phi = (a - q as f32) * std::f32::consts::FRAC_PI_2;
    let (s, c) = (sin_poly(phi), cos_poly(phi));
    // θ = (q + f)·π/2: swap sin/cos on odd quadrants, flip signs by
    // quadrant. Branchless selects keep the chunk loops vectorizable.
    let swap = q & 1 != 0;
    let (cos_mag, sin_mag) = if swap { (s, c) } else { (c, s) };
    let cos_v = if (q + 1) & 2 != 0 { -cos_mag } else { cos_mag };
    let sin_v = if q & 2 != 0 { -sin_mag } else { sin_mag };
    (cos_v, sin_v)
}

/// Natural log on `(0, 1]` (any positive normal `f32`, in fact): exponent
/// extraction plus an odd `atanh` polynomial on the mantissa.
///
/// With `m` normalized to `[√½, √2)`, `s = (m-1)/(m+1)` stays in
/// `[-0.172, 0.172]` and the degree-7 odd series is accurate to ~1 ulp —
/// far below the 24-bit grid the inputs live on.
#[inline]
fn ln_unit(x: f32) -> f32 {
    let bits = x.to_bits();
    let e_raw = ((bits >> 23) & 0xFF) as i32 - 127;
    let m_raw = f32::from_bits((bits & 0x007F_FFFF) | 0x3F80_0000); // [1, 2)
    let shift = m_raw >= std::f32::consts::SQRT_2;
    let m = if shift { 0.5 * m_raw } else { m_raw };
    let e = if shift { e_raw + 1 } else { e_raw };
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    // atanh(s) = s + s³/3 + s⁵/5 + s⁷/7; ln m = 2 atanh(s).
    let p = s * (1.0 + s2 * (1.0 / 3.0 + s2 * (0.2 + s2 * (1.0 / 7.0))));
    e as f32 * std::f32::consts::LN_2 + 2.0 * p
}

/// `sin φ` on `[0, π/2)`: odd Taylor polynomial through degree 9
/// (max error ≈ 3.6e-6 at φ = π/2, well under the sampler's grid).
#[inline]
fn sin_poly(x: f32) -> f32 {
    const S3: f32 = -1.0 / 6.0;
    const S5: f32 = 1.0 / 120.0;
    const S7: f32 = -1.0 / 5040.0;
    const S9: f32 = 1.0 / 362_880.0;
    let x2 = x * x;
    x * (1.0 + x2 * (S3 + x2 * (S5 + x2 * (S7 + x2 * S9))))
}

/// `cos φ` on `[0, π/2)`: even Taylor polynomial through degree 10
/// (max error ≈ 4.7e-7 at φ = π/2).
#[inline]
fn cos_poly(x: f32) -> f32 {
    const C2: f32 = -0.5;
    const C4: f32 = 1.0 / 24.0;
    const C6: f32 = -1.0 / 720.0;
    const C8: f32 = 1.0 / 40_320.0;
    const C10: f32 = -1.0 / 3_628_800.0;
    let x2 = x * x;
    1.0 + x2 * (C2 + x2 * (C4 + x2 * (C6 + x2 * (C8 + x2 * C10))))
}

/// Box–Muller from two 24-bit lanes (the per-pair spec).
#[inline]
fn box_muller(u1_bits: i32, u2_bits: i32) -> (f32, f32) {
    let r = radius(u1_bits);
    let (c, s) = cos_sin_turn(u2_bits);
    (r * c, r * s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_pure_functions_of_key_and_counter() {
        let a = CbRng::new(1, 2);
        let b = CbRng::new(1, 2);
        for ctr in [0u64, 1, 7, u64::MAX] {
            assert_eq!(a.block(ctr), b.block(ctr));
        }
        assert_ne!(a.block(0), a.block(1));
        assert_ne!(CbRng::new(1, 2).block(0), CbRng::new(2, 2).block(0));
        assert_ne!(CbRng::new(1, 2).block(0), CbRng::new(1, 3).block(0));
    }

    #[test]
    fn chunked_uniform_matches_reference_for_every_length() {
        let g = CbRng::new(0xDEAD_BEEF, 42);
        // Lengths straddling the chunk boundary and odd tails.
        for n in [0usize, 1, 3, 4, CHUNK - 1, CHUNK, CHUNK + 5, 3 * CHUNK + 17] {
            let mut out = vec![0.0f32; n];
            g.fill_uniform(&mut out);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v.to_bits(), g.ref_uniform(i).to_bits(), "i={i} n={n}");
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn chunked_normal_matches_reference_for_every_length() {
        for key in [0u64, 1, 0x1234_5678_9ABC_DEF0] {
            let g = CbRng::new(key, !key);
            for n in [1usize, 2, 7, CHUNK, CHUNK + 1, 2 * CHUNK + 3] {
                let mut out = vec![0.0f32; n];
                g.fill_normal(&mut out, 0.0, 1.0);
                for (i, &v) in out.iter().enumerate() {
                    let (z0, z1) = g.ref_normal_pair(i / 2);
                    let z = if i % 2 == 0 { z0 } else { z1 };
                    let want = z * 1.0 + 0.0;
                    assert_eq!(v.to_bits(), want.to_bits(), "key={key} i={i} n={n}");
                }
            }
        }
    }

    #[test]
    fn axpy_negated_std_cancels_exactly() {
        let g = CbRng::new(9, 9);
        let mut plus = vec![0.0f32; 301];
        let mut minus = vec![0.0f32; 301];
        g.axpy_normal(&mut plus, 2.5);
        g.axpy_normal(&mut minus, -2.5);
        for (p, m) in plus.iter().zip(&minus) {
            // z·(-σ) is exactly -(z·σ), so the contributions negate
            // bit-for-bit — the property the pairwise SA masks rest on.
            assert_eq!(m.to_bits(), (-p).to_bits());
        }
    }

    #[test]
    fn ln_matches_libm_on_the_unit_interval() {
        for i in 1..=10_000 {
            let x = i as f32 / 10_000.0;
            let got = ln_unit(x);
            let want = (x as f64).ln() as f32;
            assert!(
                (got - want).abs() <= 2e-6 * want.abs().max(1.0),
                "x={x} got={got} want={want}"
            );
        }
    }

    #[test]
    fn cos_sin_match_libm_over_the_turn() {
        for i in 0..(1 << 14) {
            let bits = i << 10; // spread across the 24-bit lane
            let theta = bits as f64 / (1u32 << 24) as f64 * std::f64::consts::TAU;
            let (c, s) = cos_sin_turn(bits);
            assert!((c as f64 - theta.cos()).abs() < 5e-6, "cos at {theta}");
            assert!((s as f64 - theta.sin()).abs() < 5e-6, "sin at {theta}");
        }
    }

    #[test]
    fn normal_moments_at_one_million() {
        let g = CbRng::new(0xFEED, 0xF00D);
        let n = 1_000_000usize;
        let mut out = vec![0.0f32; n];
        g.fill_normal(&mut out, 0.0, 1.0);
        let mean = out.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var = out.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        let tail3 = out.iter().filter(|&&x| x.abs() > 3.0).count() as f64 / n as f64;
        assert!(mean.abs() < 4e-3, "mean={mean}");
        assert!((var - 1.0).abs() < 5e-3, "var={var}");
        // P(|Z| > 3) ≈ 2.7e-3.
        assert!((tail3 - 2.7e-3).abs() < 6e-4, "tail={tail3}");
    }
}

//! Minimal, dependency-free JSON tree with an emitter and a parser.
//!
//! The workspace builds hermetically (no registry dependencies), so the
//! serialization needs of the reproduction — checkpoints, experiment
//! artifacts, the lint baseline — are served by this hand-rolled module
//! instead of `serde`. The surface is deliberately tiny: a [`Json`] value
//! tree, compact and pretty emitters, a strict recursive-descent parser,
//! and the [`ToJson`] conversion trait implemented for the primitives the
//! repo serializes.
//!
//! Numbers are stored as `f64`. `f32` payloads round-trip exactly: the
//! `f32 → f64` widening is lossless and the emitter prints the shortest
//! decimal form that re-parses to the same `f64` (subnormals included).
//! Non-finite numbers have no representation in standard JSON, but the
//! wire plane and the golden snapshots must not lose them: the emitter
//! prints the bare tokens `NaN` / `-NaN` / `Infinity` / `-Infinity`
//! (sign-preserving, canonical quiet-NaN payload) and the parser accepts
//! them back, so every f32 — finite or not — survives emit→parse
//! bit-exactly. Finite values emit standard JSON, so documents without
//! non-finite numbers remain fully interoperable.
//!
//! # Example
//!
//! ```
//! use dinar_tensor::json::{Json, ToJson};
//!
//! let v = Json::obj([("name", "dinar".to_json()), ("rounds", 10.0.to_json())]);
//! let text = v.dump();
//! let back = Json::parse(&text)?;
//! assert_eq!(back.get("rounds").and_then(Json::as_f64), Some(10.0));
//! # Ok::<(), dinar_tensor::json::JsonError>(())
//! ```

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (no hashing, deterministic
    /// emission).
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// Human-readable description.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Conversion into a [`Json`] tree.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl Json {
    // ------------------------------------------------------------------
    // Construction and access
    // ------------------------------------------------------------------

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks a key up in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= usize::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Emission
    // ------------------------------------------------------------------

    /// Compact single-line JSON text.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed JSON text with two-space indentation.
    pub fn dump_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    // ------------------------------------------------------------------
    // Parsing
    // ------------------------------------------------------------------

    /// Parses JSON text; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte offset of the first offending
    /// character for any syntactically invalid input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.is_nan() {
        // Standard JSON has no NaN; emitting `null` (serde_json's choice)
        // destroys the value on round-trip, which the wire plane cannot
        // afford. Emit a sign-preserving bare token the parser accepts.
        out.push_str(if x.is_sign_negative() { "-NaN" } else { "NaN" });
    } else if x.is_infinite() {
        out.push_str(if x < 0.0 { "-Infinity" } else { "Infinity" });
    } else if x == 0.0 && x.is_sign_negative() {
        // The integral fast path would drop the sign bit of -0.0.
        out.push_str("-0.0");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Integral values print without a fractional part.
        out.push_str(&format!("{}", x as i64));
    } else {
        // Rust's shortest-roundtrip float formatting.
        out.push_str(&format!("{x}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            at: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'N') => self.literal("NaN", Json::Num(f64::NAN)),
            Some(b'I') => self.literal("Infinity", Json::Num(f64::INFINITY)),
            Some(b'-') if self.bytes.get(self.pos + 1) == Some(&b'N') => {
                self.literal("-NaN", Json::Num(-f64::NAN))
            }
            Some(b'-') if self.bytes.get(self.pos + 1) == Some(&b'I') => {
                self.literal("-Infinity", Json::Num(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and we only stopped at ASCII
                // boundaries, so the run is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(
                    |_| JsonError {
                        at: start,
                        reason: "invalid UTF-8 in string".to_string(),
                    },
                )?);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a following \uXXXX.
                                self.expect_byte(b'\\')?;
                                self.expect_byte(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape sequence")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            at: start,
            reason: "invalid number".to_string(),
        })?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            at: start,
            reason: format!("invalid number `{text}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_of_nested_values() {
        let v = Json::obj([
            ("name", "dinar \"quoted\" \\ path\n".to_json()),
            ("pi", 3.25f64.to_json()),
            ("n", 42usize.to_json()),
            ("flag", true.to_json()),
            ("nothing", Json::Null),
            ("list", vec![1.0f32, -2.5, 0.0].to_json()),
            (
                "pairs",
                vec![(1usize, 2usize), (3, 4)].to_json(),
            ),
        ]);
        for text in [v.dump(), v.dump_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn f32_values_roundtrip_exactly() {
        let values: Vec<f32> = vec![
            0.1,
            -1.0 / 3.0,
            f32::MIN_POSITIVE,
            1.234_567_9e30,
            -9.87e-30,
            0.0,
            -0.0,
        ];
        let text = values.to_json().dump();
        let back = Json::parse(&text).unwrap();
        let parsed: Vec<f32> = back
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap() as f32)
            .collect();
        assert_eq!(parsed.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                   values.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["{not json", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", ""] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let v = Json::parse("\"a\\u00e9\\ud83d\\ude00b\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "aé😀b");
    }

    #[test]
    fn non_finite_numbers_emit_bare_tokens() {
        assert_eq!(Json::Num(f64::NAN).dump(), "NaN");
        assert_eq!(Json::Num(-f64::NAN).dump(), "-NaN");
        assert_eq!(Json::Num(f64::INFINITY).dump(), "Infinity");
        assert_eq!(Json::Num(f64::NEG_INFINITY).dump(), "-Infinity");
    }

    #[test]
    fn non_finite_and_subnormal_f32_roundtrip_bit_exactly() {
        // The wire plane serializes raw parameter bits; every f32 — quiet
        // NaNs of both signs, infinities, subnormals at both ends of the
        // range, signed zeros and the finite extremes — must survive
        // emit→parse with its exact bit pattern.
        let values: Vec<f32> = vec![
            f32::NAN,
            -f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::from_bits(0x0000_0001), // smallest positive subnormal
            f32::from_bits(0x007F_FFFF), // largest subnormal
            f32::from_bits(0x8000_0001), // smallest negative subnormal
            f32::MIN_POSITIVE,
            f32::MAX,
            f32::MIN,
            0.0,
            -0.0,
        ];
        let text = values.to_json().dump();
        let back = Json::parse(&text).unwrap();
        let parsed: Vec<u32> = back
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| (v.as_f64().unwrap() as f32).to_bits())
            .collect();
        let expect: Vec<u32> = values.iter().map(|x| x.to_bits()).collect();
        assert_eq!(parsed, expect);
    }

    #[test]
    fn non_finite_tokens_parse_inside_structures() {
        let v = Json::parse("{\"a\": [NaN, -Infinity], \"b\": Infinity}").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert!(arr[0].as_f64().unwrap().is_nan());
        assert_eq!(arr[1].as_f64(), Some(f64::NEG_INFINITY));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(f64::INFINITY));
        // Truncated tokens are still rejected.
        for bad in ["Na", "-Inf", "Infinit", "NaNx"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn object_access_helpers() {
        let v = Json::parse("{\"a\": {\"b\": [1, \"x\", false]}}").unwrap();
        let inner = v.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(inner[0].as_usize(), Some(1));
        assert_eq!(inner[1].as_str(), Some("x"));
        assert_eq!(inner[2].as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_usize(), None);
    }

    #[test]
    fn large_integers_keep_integral_form() {
        let v = Json::Num(9_007_199_254_740_992.0); // 2^53, > 1e15 threshold
        let text = v.dump();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }
}

//! # dinar-tensor
//!
//! Dense `f32` tensor library that serves as the numerical substrate of the
//! DINAR reproduction. The paper's prototype runs on PyTorch 1.13; this crate
//! provides the equivalent primitives needed by the neural-network stack in
//! `dinar-nn`:
//!
//! * an owned, contiguous, row-major [`Tensor`] with elementwise arithmetic,
//!   matrix multiplication, reductions and shape manipulation,
//! * `im2col`/`col2im` lowering for 1-D and 2-D convolutions ([`conv`]),
//! * a deterministic, splittable random number generator ([`rng::Rng`]) with
//!   uniform and Gaussian (Box–Muller) sampling so that every experiment in
//!   the paper's evaluation is reproducible from a seed, plus a
//!   counter-based bulk sampler ([`cbrng::CbRng`]) whose chunked
//!   `fill_uniform`/`fill_normal` paths make per-round noise draws cheap
//!   without giving up bit-exact reproducibility,
//! * live/peak allocation accounting ([`alloc`]) used to reproduce the
//!   memory-overhead column of Table 3 without a GPU.
//!
//! # Example
//!
//! ```
//! use dinar_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok::<(), dinar_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod cast;
pub mod cbrng;
pub mod conv;
mod error;
pub mod json;
mod kernels;
pub mod par;
pub mod profile;
pub mod rng;
pub mod sanitize;
pub mod storage;
mod tensor;
pub mod wire;

pub use cbrng::CbRng;
pub use error::TensorError;
pub use rng::{Rng, RngState};
pub use storage::{Buffer, BufferPool, Dtype, Element, QuantTensor, F16};
pub use tensor::Tensor;

/// Crate-wide result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;

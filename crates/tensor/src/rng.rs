//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the reproduction — weight initialization,
//! data synthesis, batch shuffling, DP noise, obfuscation values, Byzantine
//! behaviour — draws from [`Rng`], a hand-rolled xoshiro256\*\* generator
//! seeded through SplitMix64. Using one self-contained generator (rather than
//! the `rand` crate's thread-local entropy) makes every figure in the paper's
//! evaluation exactly reproducible from a single seed, and the
//! [`Rng::split`] operation derives independent streams per FL client so that
//! changing the number of clients does not perturb the other clients' draws.
//!
//! Scalar draws ([`Rng::normal`], [`Rng::uniform`]) walk the xoshiro stream
//! one sample at a time. Bulk draws ([`Rng::fill_normal`],
//! [`Rng::fill_uniform`], [`Rng::axpy_normal`] and the tensor constructors
//! built on them) instead consume two xoshiro outputs to key a fresh
//! counter-based stream ([`crate::cbrng::CbRng`]) and sample it with chunked,
//! autovectorized Box–Muller — an order of magnitude faster per element,
//! still a pure function of the seed/split hierarchy, and **cache-free**:
//! a bulk fill never consumes or leaves the scalar path's Box–Muller
//! half-sample, so interleaving scalar and bulk draws stays reproducible.

use crate::cbrng::CbRng;
use crate::{profile, Tensor};

/// Deterministic xoshiro256\*\* pseudo-random number generator.
///
/// # Example
///
/// ```
/// use dinar_tensor::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_cache: Option<f32>,
}

/// A serializable snapshot of an [`Rng`]'s full state, taken with
/// [`Rng::state`] and restored with [`Rng::from_state`]. This is what the
/// checkpoint plane persists so that a resumed run continues every client's
/// stream bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngState {
    /// The four xoshiro256\*\* state words.
    pub words: [u64; 4],
    /// The in-flight Box–Muller half-sample, if a scalar Gaussian pair was
    /// split across the snapshot point.
    pub gauss_cache: Option<f32>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The four words of xoshiro state are expanded from the seed with
    /// SplitMix64, as recommended by the xoshiro authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        Rng {
            state,
            gauss_cache: None,
        }
    }

    /// Derives an independent generator for the given stream.
    ///
    /// Streams with distinct `(parent seed, stream)` pairs are statistically
    /// independent; FL clients each receive `rng.split(client_id)`.
    pub fn split(&self, stream: u64) -> Rng {
        // Mix the current state with the stream id through SplitMix64 so that
        // both distinct parents and distinct streams yield distinct children.
        let mut s = self.state[0]
            ^ self.state[1].rotate_left(17)
            ^ self.state[2].rotate_left(31)
            ^ self.state[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        Rng {
            state,
            gauss_cache: None,
        }
    }

    /// Snapshots the full generator state for checkpointing: the four
    /// xoshiro words plus the Box–Muller half-sample cache. Restoring with
    /// [`Rng::from_state`] resumes the stream bit-exactly, including an
    /// in-flight scalar Gaussian pair.
    pub fn state(&self) -> RngState {
        RngState {
            words: self.state,
            gauss_cache: self.gauss_cache,
        }
    }

    /// Rebuilds a generator from a [`RngState`] snapshot; the restored
    /// stream continues exactly where [`Rng::state`] was taken.
    pub fn from_state(state: RngState) -> Rng {
        Rng {
            state: state.words,
            gauss_cache: state.gauss_cache,
        }
    }

    /// Next raw 64-bit output (xoshiro256\*\*).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // Take the top 24 bits for a uniformly distributed mantissa.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform_in requires lo <= hi, got {lo} > {hi}");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// Lemire's widening-multiply reduction (Lemire, "Fast Random Integer
    /// Generation in an Interval", 2019): `x·n / 2^64` maps the raw word
    /// into `[0, n)` with one multiply instead of a divide, and only the
    /// draws whose low product word falls below `2^64 mod n` — at most one
    /// slot per residue class — are rejected to remove the bias. The
    /// `2^64 mod n` divide itself is computed lazily, only on the (rare)
    /// `lo < n` path.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        let n = n as u64;
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            // 2^64 mod n, via (2^64 - n) mod n.
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.gauss_cache.take() {
            return z;
        }
        // u1 in (0, 1] to keep ln(u1) finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * (u1 as f64).ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2 as f64;
        self.gauss_cache = Some((r * theta.sin()) as f32);
        (r * theta.cos()) as f32
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal()
    }

    /// Bernoulli trial with success probability `p`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A uniformly random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// Sample from a Dirichlet distribution with symmetric concentration
    /// `alpha` over `k` categories.
    ///
    /// Gamma variates are generated with the Marsaglia–Tsang method (with the
    /// `alpha < 1` boost). This drives the paper's non-IID partitioner (§5.8).
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0` or `k == 0`.
    pub fn dirichlet(&mut self, alpha: f64, k: usize) -> Vec<f64> {
        assert!(alpha > 0.0, "dirichlet requires alpha > 0");
        assert!(k > 0, "dirichlet requires k > 0");
        let mut draws: Vec<f64> = (0..k).map(|_| self.gamma(alpha)).collect();
        let total: f64 = draws.iter().sum();
        if total <= 0.0 {
            // Numerically degenerate (tiny alpha): fall back to a one-hot.
            let hot = self.below(k);
            return (0..k).map(|i| if i == hot { 1.0 } else { 0.0 }).collect();
        }
        for d in &mut draws {
            *d /= total;
        }
        draws
    }

    /// Gamma(shape, 1) variate via Marsaglia–Tsang.
    fn gamma(&mut self, shape: f64) -> f64 {
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a + 1) * U^{1/a}.
            let u = (1.0 - self.uniform() as f64).max(f64::MIN_POSITIVE);
            return self.gamma(shape + 1.0) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal() as f64;
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = (1.0 - self.uniform() as f64).max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }

    // ------------------------------------------------------------------
    // Bulk sampling (counter-based fills)
    // ------------------------------------------------------------------

    /// Keys a fresh counter-based stream for one bulk fill: two xoshiro
    /// outputs become the 128-bit [`CbRng`] key, so every fill gets a
    /// distinct position-indexed stream that is still a pure function of
    /// the seed/split hierarchy. Deliberately does **not** touch
    /// `gauss_cache` — bulk fills are cache-free by construction.
    fn derive_cb(&mut self) -> CbRng {
        let key0 = self.next_u64();
        let key1 = self.next_u64();
        CbRng::new(key0, key1)
    }

    /// Fills `out` with i.i.d. uniform samples in `[0, 1)`.
    ///
    /// Chunked counter-based path: element `i` equals the keyed stream's
    /// [`CbRng::ref_uniform`]`(i)` bit-for-bit. An empty `out` consumes no
    /// generator state.
    pub fn fill_uniform(&mut self, out: &mut [f32]) {
        if out.is_empty() {
            return;
        }
        profile::record_rng_samples(out.len());
        self.derive_cb().fill_uniform(out);
    }

    /// Fills `out` with i.i.d. uniform samples in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn fill_uniform_in(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        assert!(lo <= hi, "fill_uniform_in requires lo <= hi, got {lo} > {hi}");
        self.fill_uniform(out);
        for x in out {
            *x = lo + (hi - lo) * *x;
        }
    }

    /// Fills `out` with i.i.d. standard normal samples (chunked
    /// counter-based Box–Muller; see the module docs).
    pub fn fill_normal(&mut self, out: &mut [f32]) {
        self.fill_normal_with(out, 0.0, 1.0);
    }

    /// Fills `out` with i.i.d. `N(mean, std_dev²)` samples.
    pub fn fill_normal_with(&mut self, out: &mut [f32], mean: f32, std_dev: f32) {
        if out.is_empty() {
            return;
        }
        profile::record_rng_samples(out.len());
        self.derive_cb().fill_normal(out, mean, std_dev);
    }

    /// Adds `std_dev · zᵢ` to every element of `out`, with `zᵢ` i.i.d.
    /// standard normal — the in-place shape every noise mechanism needs
    /// (DP/CDP/DP-SGD noising, SA pairwise masks). Negating `std_dev`
    /// negates each contribution exactly, so a pair of calls with the same
    /// stream and opposite signs cancels bit-exactly.
    pub fn axpy_normal(&mut self, out: &mut [f32], std_dev: f32) {
        if out.is_empty() {
            return;
        }
        profile::record_rng_samples(out.len());
        self.derive_cb().axpy_normal(out, std_dev);
    }

    // ------------------------------------------------------------------
    // Tensor sampling
    // ------------------------------------------------------------------

    /// Tensor of i.i.d. standard normal samples (bulk counter-based path).
    pub fn randn(&mut self, shape: &[usize]) -> Tensor {
        let mut t = Tensor::zeros(shape);
        self.fill_normal(t.as_mut_slice());
        t
    }

    /// Tensor of i.i.d. normal samples with given mean and standard deviation.
    pub fn randn_with(&mut self, shape: &[usize], mean: f32, std_dev: f32) -> Tensor {
        let mut t = Tensor::zeros(shape);
        self.fill_normal_with(t.as_mut_slice(), mean, std_dev);
        t
    }

    /// Overwrites an existing tensor with i.i.d. standard normal samples —
    /// [`Rng::randn`] without the allocation, for round loops that reuse a
    /// noise buffer.
    pub fn randn_into(&mut self, out: &mut Tensor) {
        self.fill_normal(out.as_mut_slice());
    }

    /// Tensor of i.i.d. uniform samples in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn rand_uniform(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        let mut t = Tensor::zeros(shape);
        self.fill_uniform_in(t.as_mut_slice(), lo, hi);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_deterministic_and_distinct() {
        let root = Rng::seed_from(99);
        let mut c0 = root.split(0);
        let mut c0_again = root.split(0);
        let mut c1 = root.split(1);
        assert_eq!(c0.next_u64(), c0_again.next_u64());
        assert_ne!(c0.next_u64(), c1.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Rng::seed_from(4);
        let mean: f32 = (0..20_000).map(|_| rng.uniform()).sum::<f32>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(5);
        let n = 40_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from(6);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_is_unbiased_across_buckets() {
        // The old plain-modulo code this replaced would also pass a loose
        // frequency check, so pin the bound tight: with 70_000 draws over 7
        // buckets, each count is Binomial(70_000, 1/7) with σ ≈ 92; ±5σ
        // keeps the flake rate negligible while catching any systematic
        // residue-class bias.
        let mut rng = Rng::seed_from(13);
        let trials = 70_000usize;
        let mut counts = [0usize; 7];
        for _ in 0..trials {
            counts[rng.below(7)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let dev = c as f64 - trials as f64 / 7.0;
            assert!(dev.abs() < 5.0 * 92.0, "bucket {i}: count {c}");
        }
        // Edge widths: powers of two never reject, u64-scale widths
        // exercise the threshold path.
        for &n in &[1usize, 2, 1 << 20, usize::MAX] {
            let v = rng.below(n);
            assert!(v < n);
        }
    }

    #[test]
    fn bulk_fill_matches_scalar_reference_stream() {
        // The fill must be bit-identical to deriving the same counter-based
        // key by hand and walking the scalar reference path.
        let mut rng = Rng::seed_from(14);
        let mut twin = rng.clone();
        let mut out = vec![0.0f32; 1001];
        rng.fill_normal_with(&mut out, 0.25, 1.75);
        let cb = CbRng::new(twin.next_u64(), twin.next_u64());
        for (i, &v) in out.iter().enumerate() {
            let (z0, z1) = cb.ref_normal_pair(i / 2);
            let z = if i % 2 == 0 { z0 } else { z1 };
            let want = z * 1.75 + 0.25;
            assert_eq!(v.to_bits(), want.to_bits(), "i={i}");
        }
    }

    #[test]
    fn bulk_fills_leave_the_scalar_cache_alone() {
        // Regression for the gauss_cache hazard: a bulk fill between two
        // scalar draws must neither consume nor replace the cached
        // Box–Muller half-sample.
        let mut with_fill = Rng::seed_from(15);
        let mut without = Rng::seed_from(15);
        let a = with_fill.normal(); // primes the sin-half cache
        let b = without.normal();
        assert_eq!(a.to_bits(), b.to_bits());
        let mut buf = vec![0.0f32; 33]; // odd length: no half-sample spare
        with_fill.fill_normal(&mut buf);
        // The very next scalar draw delivers the same cached half.
        assert_eq!(with_fill.normal().to_bits(), without.normal().to_bits());
    }

    #[test]
    fn split_streams_fill_independently() {
        let root = Rng::seed_from(16);
        let mut a = vec![0.0f32; 256];
        let mut b = vec![0.0f32; 256];
        root.split(0).fill_normal(&mut a);
        root.split(1).fill_normal(&mut b);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() != y.to_bits()));
        // Same split, same stream.
        let mut a2 = vec![0.0f32; 256];
        root.split(0).fill_normal(&mut a2);
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            a2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bulk_moments_and_uniform_range() {
        let mut rng = Rng::seed_from(17);
        let mut z = vec![0.0f32; 100_000];
        rng.fill_normal(&mut z);
        let mean = z.iter().map(|&x| x as f64).sum::<f64>() / z.len() as f64;
        let var = z.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 0.015, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");

        let mut u = vec![0.0f32; 10_000];
        rng.fill_uniform_in(&mut u, -0.5, 0.5);
        assert!(u.iter().all(|&x| (-0.5..0.5).contains(&x)));
        let umean = u.iter().map(|&x| x as f64).sum::<f64>() / u.len() as f64;
        assert!(umean.abs() < 0.01, "umean={umean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(8);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = Rng::seed_from(9);
        for &alpha in &[0.1, 0.8, 2.0, 5.0, 100.0] {
            let p = rng.dirichlet(alpha, 10);
            let total: f64 = p.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "alpha={alpha} total={total}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn dirichlet_concentration_controls_spread() {
        // Low alpha -> spiky distributions; high alpha -> near-uniform.
        let mut rng = Rng::seed_from(10);
        let spiky: f64 = (0..200)
            .map(|_| {
                rng.dirichlet(0.1, 10)
                    .into_iter()
                    .fold(0.0f64, f64::max)
            })
            .sum::<f64>()
            / 200.0;
        let flat: f64 = (0..200)
            .map(|_| {
                rng.dirichlet(100.0, 10)
                    .into_iter()
                    .fold(0.0f64, f64::max)
            })
            .sum::<f64>()
            / 200.0;
        assert!(
            spiky > flat + 0.3,
            "expected spiky ({spiky}) >> flat ({flat})"
        );
    }

    #[test]
    fn randn_tensor_shape() {
        let mut rng = Rng::seed_from(11);
        let t = rng.randn(&[3, 4]);
        assert_eq!(t.shape(), &[3, 4]);
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Rng::seed_from(12);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f32 / 10_000.0 - 0.3).abs() < 0.02);
    }
}

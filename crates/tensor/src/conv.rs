//! `im2col`/`col2im` lowering for convolutions.
//!
//! The CNN architectures of the paper (ResNet20 for CIFAR, VGG11 for
//! GTSRB/CelebA, M18 for Speech Commands) are built on 2-D and 1-D
//! convolutions. As in most CPU deep-learning stacks, convolution is lowered
//! to matrix multiplication: [`im2col2d`] unfolds input patches into the rows
//! of a matrix so the convolution becomes one `matmul` against the flattened
//! kernel bank, and [`col2im2d`] folds gradient columns back onto the input
//! for the backward pass. [`im2col1d`]/[`col2im1d`] are the waveform (audio)
//! counterparts.

use crate::cast::idx_to_usize;
use crate::{par, sanitize, Result, Tensor, TensorError};

/// Minimum output cells per parallel part for the lowering kernels; below
/// this the whole buffer is filled inline.
const PAR_MIN_CELLS: usize = 16 * 1024;

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dGeom {
    /// Output spatial size `(out_h, out_w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConv`] if the kernel does not fit in the
    /// padded input or the stride is zero.
    pub fn output_size(&self) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidConv {
                reason: "stride must be positive".into(),
            });
        }
        let ph = self.height + 2 * self.padding;
        let pw = self.width + 2 * self.padding;
        if self.kernel_h == 0 || self.kernel_w == 0 || self.kernel_h > ph || self.kernel_w > pw {
            return Err(TensorError::InvalidConv {
                reason: format!(
                    "kernel {}x{} does not fit padded input {}x{}",
                    self.kernel_h, self.kernel_w, ph, pw
                ),
            });
        }
        Ok((
            (ph - self.kernel_h) / self.stride + 1,
            (pw - self.kernel_w) / self.stride + 1,
        ))
    }

    /// Number of elements in one unfolded patch (`C * kh * kw`).
    pub fn patch_len(&self) -> usize {
        self.channels * self.kernel_h * self.kernel_w
    }
}

/// Unfolds a batched image tensor into patch rows.
///
/// `input` must have shape `[n, c, h, w]`. The result has shape
/// `[n * out_h * out_w, c * kh * kw]`: row `(i, oy, ox)` holds the receptive
/// field of output pixel `(oy, ox)` of sample `i`, so that
/// `cols.matmul_t(kernels)` (with `kernels` of shape
/// `[out_c, c * kh * kw]`) computes the convolution.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `input` does not match the
/// geometry, or [`TensorError::InvalidConv`] for invalid geometry.
pub fn im2col2d(input: &Tensor, geom: &Conv2dGeom) -> Result<Tensor> {
    let (oh, ow) = geom.output_size()?;
    let shape = input.shape();
    if shape.len() != 4 || shape[1] != geom.channels || shape[2] != geom.height || shape[3] != geom.width {
        return Err(TensorError::ShapeMismatch {
            lhs: shape.to_vec(),
            rhs: vec![0, geom.channels, geom.height, geom.width],
            op: "im2col2d",
        });
    }
    let n = shape[0];
    sanitize::check_finite("im2col2d", "input", input);
    let (c, h, w) = (geom.channels, geom.height, geom.width);
    let (kh, kw, s, p) = (geom.kernel_h, geom.kernel_w, geom.stride, geom.padding);
    let patch = geom.patch_len();
    let mut out = vec![0.0f32; n * oh * ow * patch];
    let x = input.as_slice();
    // Parallel over flat patch rows: each row is written by exactly one
    // thread and depends only on its own (i, oy, ox) coordinates, so the
    // result is identical for any partition.
    if patch > 0 && oh * ow > 0 {
        let min_rows = (PAR_MIN_CELLS / patch.max(1)).max(1);
        par::for_each_part_mut(&mut out, patch, min_rows, |offset, rows| {
            let mut r = offset / patch;
            for row_buf in rows.chunks_exact_mut(patch) {
                let i = r / (oh * ow);
                let rem = r % (oh * ow);
                let oy = rem / ow;
                let ox = rem % ow;
                for ch in 0..c {
                    for ky in 0..kh {
                        let iy = (oy * s + ky) as isize - p as isize;
                        if iy < 0 || iy >= h as isize {
                            continue; // zero padding
                        }
                        for kx in 0..kw {
                            let ix = (ox * s + kx) as isize - p as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let src = ((i * c + ch) * h + idx_to_usize(iy)) * w + idx_to_usize(ix);
                            row_buf[(ch * kh + ky) * kw + kx] = x[src];
                        }
                    }
                }
                r += 1;
            }
        });
    }
    let cols = Tensor::from_vec(out, &[n * oh * ow, patch])?;
    sanitize::check_shape_contract("im2col2d", &[n * oh * ow, patch], cols.shape());
    crate::profile::record_im2col(cols.len() as u64 * 4);
    Ok(cols)
}

/// Folds patch-row gradients back onto the input (the adjoint of
/// [`im2col2d`]).
///
/// `cols` must have shape `[n * out_h * out_w, c * kh * kw]`; the result has
/// shape `[n, c, h, w]`, with overlapping patches accumulated.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` does not match the
/// geometry, or [`TensorError::InvalidConv`] for invalid geometry.
pub fn col2im2d(cols: &Tensor, n: usize, geom: &Conv2dGeom) -> Result<Tensor> {
    let (oh, ow) = geom.output_size()?;
    let patch = geom.patch_len();
    if cols.shape() != [n * oh * ow, patch] {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.shape().to_vec(),
            rhs: vec![n * oh * ow, patch],
            op: "col2im2d",
        });
    }
    sanitize::check_finite("col2im2d", "cols", cols);
    let (c, h, w) = (geom.channels, geom.height, geom.width);
    let (kh, kw, s, p) = (geom.kernel_h, geom.kernel_w, geom.stride, geom.padding);
    let mut out = vec![0.0f32; n * c * h * w];
    let g = cols.as_slice();
    // Overlapping patches accumulate, but only within one sample's `[c, h,
    // w]` block — so parallelizing over samples keeps every accumulation
    // on a single thread in the original (oy, ox, ch, ky, kx) order.
    let sample = c * h * w;
    if sample > 0 && n > 0 {
        let min_samples = (PAR_MIN_CELLS / (oh * ow * patch).max(1)).max(1);
        par::for_each_part_mut(&mut out, sample, min_samples, |offset, part| {
            let i0 = offset / sample;
            for (local, out_sample) in part.chunks_exact_mut(sample).enumerate() {
                let i = i0 + local;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let row = ((i * oh + oy) * ow + ox) * patch;
                        for ch in 0..c {
                            for ky in 0..kh {
                                let iy = (oy * s + ky) as isize - p as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix = (ox * s + kx) as isize - p as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let dst = (ch * h + idx_to_usize(iy)) * w + idx_to_usize(ix);
                                    let src = row + (ch * kh + ky) * kw + kx;
                                    out_sample[dst] += g[src];
                                }
                            }
                        }
                    }
                }
            }
        });
    }
    sanitize::check_finite_slice("col2im2d", "output", &out);
    crate::profile::record_col2im(out.len() as u64 * 4);
    Tensor::from_vec(out, &[n, c, h, w])
}

/// Geometry of a 1-D convolution over waveforms `[n, c, len]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv1dGeom {
    /// Input channels.
    pub channels: usize,
    /// Input length.
    pub len: usize,
    /// Kernel length.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on both ends.
    pub padding: usize,
}

impl Conv1dGeom {
    /// Output length.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConv`] if the kernel does not fit in the
    /// padded input or the stride is zero.
    pub fn output_len(&self) -> Result<usize> {
        if self.stride == 0 {
            return Err(TensorError::InvalidConv {
                reason: "stride must be positive".into(),
            });
        }
        let pl = self.len + 2 * self.padding;
        if self.kernel == 0 || self.kernel > pl {
            return Err(TensorError::InvalidConv {
                reason: format!("kernel {} does not fit padded input {}", self.kernel, pl),
            });
        }
        Ok((pl - self.kernel) / self.stride + 1)
    }
}

/// 1-D analogue of [`im2col2d`]: unfolds `[n, c, len]` into
/// `[n * out_len, c * kernel]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `input` does not match the
/// geometry, or [`TensorError::InvalidConv`] for invalid geometry.
pub fn im2col1d(input: &Tensor, geom: &Conv1dGeom) -> Result<Tensor> {
    let ol = geom.output_len()?;
    let shape = input.shape();
    if shape.len() != 3 || shape[1] != geom.channels || shape[2] != geom.len {
        return Err(TensorError::ShapeMismatch {
            lhs: shape.to_vec(),
            rhs: vec![0, geom.channels, geom.len],
            op: "im2col1d",
        });
    }
    let n = shape[0];
    sanitize::check_finite("im2col1d", "input", input);
    let (c, l, k, s, p) = (geom.channels, geom.len, geom.kernel, geom.stride, geom.padding);
    let patch = c * k;
    let mut out = vec![0.0f32; n * ol * patch];
    let x = input.as_slice();
    if patch > 0 && ol > 0 {
        let min_rows = (PAR_MIN_CELLS / patch.max(1)).max(1);
        par::for_each_part_mut(&mut out, patch, min_rows, |offset, rows| {
            let mut r = offset / patch;
            for row_buf in rows.chunks_exact_mut(patch) {
                let i = r / ol;
                let o = r % ol;
                for ch in 0..c {
                    for kk in 0..k {
                        let idx = (o * s + kk) as isize - p as isize;
                        if idx < 0 || idx >= l as isize {
                            continue;
                        }
                        row_buf[ch * k + kk] = x[(i * c + ch) * l + idx_to_usize(idx)];
                    }
                }
                r += 1;
            }
        });
    }
    let cols = Tensor::from_vec(out, &[n * ol, patch])?;
    sanitize::check_shape_contract("im2col1d", &[n * ol, patch], cols.shape());
    crate::profile::record_im2col(cols.len() as u64 * 4);
    Ok(cols)
}

/// 1-D analogue of [`col2im2d`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` does not match the
/// geometry, or [`TensorError::InvalidConv`] for invalid geometry.
pub fn col2im1d(cols: &Tensor, n: usize, geom: &Conv1dGeom) -> Result<Tensor> {
    let ol = geom.output_len()?;
    let patch = geom.channels * geom.kernel;
    if cols.shape() != [n * ol, patch] {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.shape().to_vec(),
            rhs: vec![n * ol, patch],
            op: "col2im1d",
        });
    }
    sanitize::check_finite("col2im1d", "cols", cols);
    let (c, l, k, s, p) = (geom.channels, geom.len, geom.kernel, geom.stride, geom.padding);
    let mut out = vec![0.0f32; n * c * l];
    let g = cols.as_slice();
    let sample = c * l;
    if sample > 0 && n > 0 {
        let min_samples = (PAR_MIN_CELLS / (ol * patch).max(1)).max(1);
        par::for_each_part_mut(&mut out, sample, min_samples, |offset, part| {
            let i0 = offset / sample;
            for (local, out_sample) in part.chunks_exact_mut(sample).enumerate() {
                let i = i0 + local;
                for o in 0..ol {
                    let row = (i * ol + o) * patch;
                    for ch in 0..c {
                        for kk in 0..k {
                            let idx = (o * s + kk) as isize - p as isize;
                            if idx < 0 || idx >= l as isize {
                                continue;
                            }
                            out_sample[ch * l + idx_to_usize(idx)] += g[row + ch * k + kk];
                        }
                    }
                }
            }
        });
    }
    sanitize::check_finite_slice("col2im1d", "output", &out);
    crate::profile::record_col2im(out.len() as u64 * 4);
    Tensor::from_vec(out, &[n, c, l])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(c: usize, h: usize, w: usize, k: usize, s: usize, p: usize) -> Conv2dGeom {
        Conv2dGeom {
            channels: c,
            height: h,
            width: w,
            kernel_h: k,
            kernel_w: k,
            stride: s,
            padding: p,
        }
    }

    #[test]
    fn output_size_matches_formula() {
        assert_eq!(geom(3, 8, 8, 3, 1, 1).output_size().unwrap(), (8, 8));
        assert_eq!(geom(3, 8, 8, 3, 2, 1).output_size().unwrap(), (4, 4));
        assert_eq!(geom(1, 5, 5, 5, 1, 0).output_size().unwrap(), (1, 1));
    }

    #[test]
    fn invalid_geometry_errors() {
        assert!(geom(1, 3, 3, 5, 1, 0).output_size().is_err());
        assert!(geom(1, 3, 3, 3, 0, 0).output_size().is_err());
    }

    #[test]
    fn im2col_identity_kernel_1x1() {
        // With a 1x1 kernel and stride 1, im2col is a pure reshape.
        let g = geom(2, 3, 3, 1, 1, 0);
        let x = Tensor::from_fn(&[1, 2, 3, 3], |i| i as f32);
        let cols = im2col2d(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[9, 2]);
        // Row 0 = pixel (0,0) of both channels.
        assert_eq!(cols.get(&[0, 0]).unwrap(), 0.0);
        assert_eq!(cols.get(&[0, 1]).unwrap(), 9.0);
    }

    #[test]
    fn conv_via_im2col_matches_direct_convolution() {
        // 1 sample, 1 channel, 4x4 input, 3x3 kernel, stride 1, no padding.
        let g = geom(1, 4, 4, 3, 1, 0);
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32);
        let kernel = Tensor::from_fn(&[1, 9], |i| (i % 2) as f32); // alternating 0/1
        let cols = im2col2d(&x, &g).unwrap();
        let y = cols.matmul_t(&kernel).unwrap(); // [4, 1]
        // Direct convolution.
        for oy in 0..2 {
            for ox in 0..2 {
                let mut acc = 0.0;
                for ky in 0..3 {
                    for kx in 0..3 {
                        let kidx = ky * 3 + kx;
                        let w = (kidx % 2) as f32;
                        acc += w * ((oy + ky) * 4 + ox + kx) as f32;
                    }
                }
                assert_eq!(y.get(&[oy * 2 + ox, 0]).unwrap(), acc);
            }
        }
    }

    #[test]
    fn padding_zeroes_are_respected() {
        let g = geom(1, 2, 2, 3, 1, 1);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let cols = im2col2d(&x, &g).unwrap();
        // Top-left output: only the bottom-right 2x2 of the kernel overlaps
        // real pixels -> 4 ones, 5 zeros.
        let first_row_sum: f32 = (0..9).map(|j| cols.get(&[0, j]).unwrap()).sum();
        assert_eq!(first_row_sum, 4.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y: the defining
        // property of an adjoint pair, which is exactly what backprop needs.
        let g = geom(2, 5, 5, 3, 2, 1);
        let mut rng = crate::Rng::seed_from(42);
        let x = rng.randn(&[2, 2, 5, 5]);
        let cols = im2col2d(&x, &g).unwrap();
        let y = rng.randn(cols.shape());
        let lhs = cols.dot(&y).unwrap();
        let folded = col2im2d(&y, 2, &g).unwrap();
        let rhs = x.dot(&folded).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn im2col1d_basic() {
        let g = Conv1dGeom {
            channels: 1,
            len: 5,
            kernel: 3,
            stride: 1,
            padding: 0,
        };
        let x = Tensor::from_fn(&[1, 1, 5], |i| i as f32);
        let cols = im2col1d(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[3, 3]);
        assert_eq!(cols.as_slice(), &[0.0, 1.0, 2.0, 1.0, 2.0, 3.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn col2im1d_is_adjoint_of_im2col1d() {
        let g = Conv1dGeom {
            channels: 3,
            len: 16,
            kernel: 5,
            stride: 2,
            padding: 2,
        };
        let mut rng = crate::Rng::seed_from(7);
        let x = rng.randn(&[2, 3, 16]);
        let cols = im2col1d(&x, &g).unwrap();
        let y = rng.randn(cols.shape());
        let lhs = cols.dot(&y).unwrap();
        let rhs = x.dot(&col2im1d(&y, 2, &g).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = geom(3, 4, 4, 3, 1, 1);
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        assert!(im2col2d(&x, &g).is_err());
        let bad_cols = Tensor::zeros(&[3, 3]);
        assert!(col2im2d(&bad_cols, 1, &g).is_err());
    }
}

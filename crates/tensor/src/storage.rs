//! Generic dtype storage backend behind the [`Tensor`](crate::Tensor) facade.
//!
//! Historically tensor storage was a hard-coded `Arc<Vec<f32>>`. This module
//! splits storage from the tensor front-end the way the checkpoint/serving
//! plane needs it:
//!
//! * [`Element`] — the closed set of storable scalar types (`f32`, `i8`, and
//!   the bit-pattern half float [`F16`]), each tagged with a [`Dtype`] and
//!   convertible to/from `f32` and to/from its raw bit pattern. The raw
//!   bit-pattern conversions are the one sanctioned punning point in the
//!   workspace: lint rule L018 confines the `to_bit_pattern` /
//!   `from_bit_pattern` spellings (and `transmute`) to this file.
//! * [`Buffer`] — the owned, dtype-generic storage unit. Construction,
//!   copy-on-write materialization (`Clone`) and `Drop` register with the
//!   two-ledger [`alloc`](crate::alloc) accounting exactly as the old
//!   `f32`-only buffer did, so all memory-overhead measurements
//!   (Table 3 of the paper) are unchanged bit for bit.
//! * [`BufferPool`] — a round-scoped free-list allocator: released buffers
//!   park their raw capacity in the pool and re-enter the ledgers only when
//!   re-acquired, so per-batch scratch (the serving plane's dequantization
//!   buffers) stops paying one heap allocation per use.
//! * [`QuantTensor`] — native `i8` storage for quantized parameters: the
//!   wire's `quant_i8` codec decodes straight into a `Buffer<i8>` plus one
//!   scale, and dequantizes to a dense `f32` [`Tensor`](crate::Tensor)
//!   lazily at first read.

use crate::{alloc, profile, Result, Tensor, TensorError};
use std::fmt;

// ---------------------------------------------------------------------------
// Dtype
// ---------------------------------------------------------------------------

/// The storable element types, as a runtime tag.
///
/// The tag byte is what the `DNCK` checkpoint format writes in front of each
/// tensor section, so the discriminant values are part of the on-disk format
/// and must never be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dtype {
    /// IEEE-754 single precision, 4 bytes/element.
    F32,
    /// Signed 8-bit quantization levels, 1 byte/element (+ one shared scale).
    I8,
    /// IEEE-754 half precision as a bit pattern, 2 bytes/element.
    F16,
}

impl Dtype {
    /// Bytes per element.
    pub fn width(self) -> usize {
        match self {
            Dtype::F32 => 4,
            Dtype::I8 => 1,
            Dtype::F16 => 2,
        }
    }

    /// The on-disk tag byte (part of the `DNCK` format).
    pub fn tag(self) -> u8 {
        match self {
            Dtype::F32 => 0x00,
            Dtype::I8 => 0x01,
            Dtype::F16 => 0x02,
        }
    }

    /// Looks a dtype up by its on-disk tag.
    pub fn from_tag(tag: u8) -> Option<Dtype> {
        match tag {
            0x00 => Some(Dtype::F32),
            0x01 => Some(Dtype::I8),
            0x02 => Some(Dtype::F16),
            _ => None,
        }
    }

    /// Human-readable name (reports, bench rows).
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::I8 => "i8",
            Dtype::F16 => "f16",
        }
    }

    /// All dtypes, in tag order.
    pub fn all() -> [Dtype; 3] {
        [Dtype::F32, Dtype::I8, Dtype::F16]
    }
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Element
// ---------------------------------------------------------------------------

/// A scalar type storable in a [`Buffer`].
///
/// The trait is the storage/backend seam: everything above it (tensor ops,
/// wire codecs, checkpoints) manipulates elements through `to_f32`/`from_f32`
/// or whole-buffer views, while the raw bit-pattern accessors exist for the
/// serialization plane and are confined to this module by lint rule L018.
pub trait Element: Copy + PartialEq + Send + Sync + fmt::Debug + 'static {
    /// The runtime dtype tag for this element type.
    const DTYPE: Dtype;

    /// Widens/decodes to `f32` (exact for `f32`, `i8` and `F16`).
    fn to_f32(self) -> f32;

    /// Narrows/encodes from `f32` (round-to-nearest-even for [`F16`],
    /// saturating for `i8`).
    fn from_f32(x: f32) -> Self;

    /// The element's raw bits, zero-extended into a `u32`.
    fn to_bit_pattern(self) -> u32;

    /// Rebuilds an element from raw bits (low `width()*8` bits used).
    fn from_bit_pattern(bits: u32) -> Self;
}

impl Element for f32 {
    const DTYPE: Dtype = Dtype::F32;

    fn to_f32(self) -> f32 {
        self
    }

    fn from_f32(x: f32) -> Self {
        x
    }

    fn to_bit_pattern(self) -> u32 {
        self.to_bits()
    }

    fn from_bit_pattern(bits: u32) -> Self {
        f32::from_bits(bits)
    }
}

impl Element for i8 {
    const DTYPE: Dtype = Dtype::I8;

    fn to_f32(self) -> f32 {
        f32::from(self)
    }

    fn from_f32(x: f32) -> Self {
        crate::cast::f32_to_i8_sat(x)
    }

    fn to_bit_pattern(self) -> u32 {
        u32::from(self as u8)
    }

    fn from_bit_pattern(bits: u32) -> Self {
        (bits & 0xFF) as u8 as i8
    }
}

/// IEEE-754 binary16 as a bit pattern.
///
/// The workspace has no native half type, so `F16` stores the 16 raw bits
/// and converts through `f32` in software: widening is exact, narrowing
/// rounds to nearest-even (with subnormal and infinity handling), matching
/// hardware `f32`→`f16` conversion.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F16(u16);

impl F16 {
    /// Wraps raw binary16 bits.
    pub const fn from_u16(bits: u16) -> F16 {
        F16(bits)
    }

    /// The raw binary16 bits.
    pub const fn to_u16(self) -> u16 {
        self.0
    }
}

impl Element for F16 {
    const DTYPE: Dtype = Dtype::F16;

    fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    fn from_f32(x: f32) -> Self {
        F16(f32_to_f16_bits(x))
    }

    fn to_bit_pattern(self) -> u32 {
        u32::from(self.0)
    }

    fn from_bit_pattern(bits: u32) -> Self {
        F16((bits & 0xFFFF) as u16)
    }
}

/// Narrows an `f32` to binary16 bits with round-to-nearest-even.
fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bit_pattern();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;
    if exp == 0xFF {
        // Infinity keeps a zero mantissa; NaN keeps the quiet bit so it
        // stays a NaN after the mantissa truncation.
        let payload = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7C00 | payload;
    }
    let e = exp - 127;
    if e >= 16 {
        return sign | 0x7C00; // overflow to infinity
    }
    if e >= -14 {
        // Normal half: 10-bit mantissa, round-to-nearest-even on the 13
        // dropped bits, carrying a mantissa overflow into the exponent.
        let mut m = mant >> 13;
        let rest = mant & 0x1FFF;
        if rest > 0x1000 || (rest == 0x1000 && m & 1 == 1) {
            m += 1;
        }
        let mut he = (e + 15) as u32;
        if m == 0x400 {
            m = 0;
            he += 1;
            if he >= 31 {
                return sign | 0x7C00;
            }
        }
        return sign | ((he as u16) << 10) | (m as u16);
    }
    if e >= -25 {
        // Subnormal half: shift the full 24-bit significand into place and
        // round to nearest-even. A round-up to 0x400 is the smallest normal
        // and that bit pattern is already correct.
        let full = mant | 0x0080_0000;
        let shift = (13 + (-14 - e)) as u32;
        let mut m = full >> shift;
        let rest = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rest > half || (rest == half && m & 1 == 1) {
            m += 1;
        }
        return sign | (m as u16);
    }
    sign // underflows to (signed) zero
}

/// Widens binary16 bits to an `f32` (always exact).
fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = (u32::from(h) & 0x8000) << 16;
    let exp = u32::from(h >> 10) & 0x1F;
    let mant = u32::from(h & 0x03FF);
    let bits = if exp == 0x1F {
        sign | 0x7F80_0000 | (mant << 13)
    } else if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal half: normalize into an f32 with implicit bit.
            let mut m = mant;
            let mut e32 = 113u32; // biased exponent of 2^-14
            while m & 0x400 == 0 {
                m <<= 1;
                e32 -= 1;
            }
            sign | (e32 << 23) | ((m & 0x3FF) << 13)
        }
    } else {
        sign | ((exp + 112) << 23) | (mant << 13)
    };
    f32::from_bit_pattern(bits)
}

// ---------------------------------------------------------------------------
// Buffer
// ---------------------------------------------------------------------------

/// The owned, dtype-generic storage unit behind a tensor: the copy-on-write
/// and allocation-accounting boundary.
///
/// A `Buffer` owns the flat element vector and is the single place where the
/// [`alloc`](crate::alloc) ledgers see tensor memory: construction records
/// the allocation, dropping records the deallocation (on the dropping
/// thread, preserving the cross-thread two-ledger semantics), and `Clone` —
/// reached only through `Arc::make_mut` when a *shared* buffer is written —
/// records the allocation of the materialized private copy plus a
/// buffer-copy tick for the copy-traffic counters.
#[derive(Debug)]
pub struct Buffer<T: Element> {
    pub(crate) data: Vec<T>,
}

impl<T: Element> Buffer<T> {
    /// Wraps an owned vector, registering its bytes with the alloc ledgers.
    pub fn new(data: Vec<T>) -> Self {
        alloc::record_alloc(Self::bytes_for(data.len()));
        Buffer { data }
    }

    /// A zero-filled buffer of `len` elements.
    pub fn zeros(len: usize) -> Self {
        Buffer::new(vec![T::from_f32(0.0); len])
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes currently charged to the ledgers for this buffer.
    pub fn byte_len(&self) -> u64 {
        Self::bytes_for(self.data.len())
    }

    /// Read-only element view.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable element view (the buffer is uniquely owned by definition).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Moves the vector out, settling this buffer's ledger charge; the
    /// caller now owns untracked memory (the later zero-length `Drop`
    /// records a zero-byte deallocation).
    pub fn take_data(&mut self) -> Vec<T> {
        alloc::record_dealloc(self.byte_len());
        std::mem::take(&mut self.data)
    }

    fn bytes_for(len: usize) -> u64 {
        (len * T::DTYPE.width()) as u64
    }
}

impl<T: Element> Clone for Buffer<T> {
    fn clone(&self) -> Self {
        alloc::record_alloc(self.byte_len());
        profile::record_buffer_copy(self.byte_len());
        Buffer {
            data: self.data.clone(),
        }
    }
}

impl<T: Element> Drop for Buffer<T> {
    fn drop(&mut self) {
        alloc::record_dealloc(self.byte_len());
    }
}

impl<T: Element> PartialEq for Buffer<T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

/// A round-scoped free-list allocator for [`Buffer`]s of one dtype.
///
/// Hot loops that allocate a same-sized scratch buffer per iteration (the
/// serving plane's per-batch dequantization scratch, a round's staging
/// buffers) acquire from the pool instead: a released buffer parks its raw
/// capacity here — off the alloc ledgers, like any caller-owned vector — and
/// the next acquisition of a fitting size reuses it, re-entering the ledgers
/// through the normal [`Buffer::new`] path. Accounting therefore stays
/// exact: bytes are charged exactly while they sit inside a live `Buffer`.
#[derive(Debug, Default)]
pub struct BufferPool<T: Element> {
    free: Vec<Vec<T>>,
    hits: u64,
    misses: u64,
}

impl<T: Element> BufferPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool {
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// A zero-filled buffer of `len` elements, reusing parked capacity when
    /// a released vector can hold it without reallocating.
    pub fn acquire(&mut self, len: usize) -> Buffer<T> {
        match self.free.iter().position(|v| v.capacity() >= len) {
            Some(i) => {
                let mut v = self.free.swap_remove(i);
                v.clear();
                v.resize(len, T::from_f32(0.0));
                self.hits += 1;
                Buffer::new(v)
            }
            None => {
                self.misses += 1;
                Buffer::zeros(len)
            }
        }
    }

    /// Returns a buffer's capacity to the pool for reuse.
    pub fn release(&mut self, mut buf: Buffer<T>) {
        self.free.push(buf.take_data());
    }

    /// Acquisitions served from parked capacity.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Acquisitions that had to allocate fresh.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of released vectors currently parked.
    pub fn parked(&self) -> usize {
        self.free.len()
    }
}

impl BufferPool<f32> {
    /// A zero-filled tensor backed by pooled storage.
    pub fn acquire_tensor(&mut self, shape: &[usize]) -> Tensor {
        let len = shape.iter().product();
        Tensor::from_buffer_unchecked(self.acquire(len), shape.to_vec())
    }

    /// Reclaims a tensor's storage into the pool. A buffer still shared
    /// with another tensor cannot be reclaimed and is simply dropped
    /// (its refcount falls; the other owners keep it).
    pub fn release_tensor(&mut self, t: Tensor) {
        if let Some(buf) = t.try_into_buffer() {
            self.release(buf);
        }
    }
}

// ---------------------------------------------------------------------------
// QuantTensor
// ---------------------------------------------------------------------------

/// A tensor stored natively as `i8` quantization levels plus one `f32`
/// scale: `value[i] = scale * levels[i]`.
///
/// This is the resident form of quantized parameters in the serving plane
/// and the landing type of the wire's `quant_i8` codec: decoding fills a
/// [`Buffer<i8>`] (one byte per element instead of four) and the dense
/// `f32` tensor is materialized lazily, at first read, through
/// [`QuantTensor::dense`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    levels: Buffer<i8>,
    scale: f32,
    shape: Vec<usize>,
    cache: Option<Tensor>,
}

impl QuantTensor {
    /// Builds a quantized tensor from raw levels, a scale and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the product of `shape`
    /// does not equal `levels.len()`.
    pub fn from_levels(levels: Vec<i8>, scale: f32, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != levels.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                data_len: levels.len(),
            });
        }
        Ok(QuantTensor {
            levels: Buffer::new(levels),
            scale,
            shape: shape.to_vec(),
            cache: None,
        })
    }

    /// Quantizes a dense tensor: symmetric `max|x| / 127` scaling with
    /// saturating rounding, identical to the wire's `quant_i8` codec.
    pub fn quantize(t: &Tensor) -> QuantTensor {
        let xs = t.as_slice();
        let scale = crate::wire::quant_scale(xs);
        let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
        let levels: Vec<i8> = xs.iter().map(|&x| i8::from_f32(x * inv)).collect();
        QuantTensor {
            levels: Buffer::new(levels),
            scale,
            shape: t.shape().to_vec(),
            cache: None,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The shared dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The raw quantization levels.
    pub fn levels(&self) -> &[i8] {
        self.levels.as_slice()
    }

    /// Resident storage bytes: one per level plus the four-byte scale.
    /// Excludes any lazily materialized dense cache.
    pub fn resident_bytes(&self) -> u64 {
        self.levels.byte_len() + 4
    }

    /// Whether the dense `f32` form has been materialized yet.
    pub fn is_materialized(&self) -> bool {
        self.cache.is_some()
    }

    /// The dense `f32` tensor, dequantized on first call and cached; later
    /// calls are O(1) shares of the cached buffer.
    pub fn dense(&mut self) -> &Tensor {
        if self.cache.is_none() {
            self.cache = Some(self.to_tensor());
        }
        // lint: allow(L001, the line above just filled the cache)
        self.cache.as_ref().expect("dense cache was just filled")
    }

    /// Eagerly dequantizes into a fresh dense tensor without caching.
    pub fn to_tensor(&self) -> Tensor {
        let scale = self.scale;
        let data: Vec<f32> = self
            .levels
            .as_slice()
            .iter()
            .map(|&l| l.to_f32() * scale)
            .collect();
        Tensor::from_buffer_unchecked(Buffer::new(data), self.shape.clone())
    }

    /// Dequantizes into an existing tensor (e.g. pooled scratch) in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `out`'s element count
    /// differs from this tensor's.
    pub fn dequantize_into(&self, out: &mut Tensor) -> Result<()> {
        if out.len() != self.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape: self.shape.clone(),
                data_len: out.len(),
            });
        }
        let scale = self.scale;
        for (dst, &l) in out.as_mut_slice().iter_mut().zip(self.levels.as_slice()) {
            *dst = l.to_f32() * scale;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::thread_live_bytes;

    #[test]
    fn dtype_tags_roundtrip_and_widths_match() {
        for d in Dtype::all() {
            assert_eq!(Dtype::from_tag(d.tag()), Some(d));
        }
        assert_eq!(Dtype::from_tag(0x7F), None);
        assert_eq!(Dtype::F32.width(), 4);
        assert_eq!(Dtype::I8.width(), 1);
        assert_eq!(Dtype::F16.width(), 2);
    }

    #[test]
    fn f16_known_values() {
        for (x, bits) in [
            (0.0f32, 0x0000u16),
            (-0.0, 0x8000),
            (1.0, 0x3C00),
            (-2.0, 0xC000),
            (0.5, 0x3800),
            (65504.0, 0x7BFF),        // largest finite half
            (f32::INFINITY, 0x7C00),
            (f32::NEG_INFINITY, 0xFC00),
            (6.103_515_6e-5, 0x0400), // smallest normal half
            (5.960_464_5e-8, 0x0001), // smallest subnormal half
        ] {
            assert_eq!(F16::from_f32(x).to_u16(), bits, "encode {x}");
            assert_eq!(f16_bits_to_f32(bits).to_bits(), x.to_bits(), "decode {bits:#06x}");
        }
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
        // Overflow saturates to infinity, underflow to signed zero.
        assert_eq!(F16::from_f32(1e6).to_u16(), 0x7C00);
        assert_eq!(F16::from_f32(-1e-10).to_u16(), 0x8000);
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 1 + 2^-11 sits exactly between 1.0 and the next half (1 + 2^-10):
        // ties go to the even mantissa (1.0).
        assert_eq!(F16::from_f32(1.0 + 2f32.powi(-11)).to_u16(), 0x3C00);
        // 1 + 3·2^-11 ties between 1+2^-10 and 1+2^-9: even is 1+2^-9.
        assert_eq!(F16::from_f32(1.0 + 3.0 * 2f32.powi(-11)).to_u16(), 0x3C02);
        // Anything past the tie rounds up.
        assert_eq!(F16::from_f32(1.0 + 2f32.powi(-11) + 2f32.powi(-20)).to_u16(), 0x3C01);
    }

    #[test]
    fn f16_widen_narrow_is_identity_on_every_pattern() {
        // Every half value must survive the f32 round trip bit-exactly
        // (NaNs keep their quiet bit; payload bits may widen but narrow
        // back to a NaN).
        for bits in 0..=u16::MAX {
            let h = F16::from_u16(bits);
            let wide = h.to_f32();
            let back = F16::from_f32(wide);
            if wide.is_nan() {
                assert!(back.to_f32().is_nan(), "{bits:#06x}");
            } else {
                assert_eq!(back.to_u16(), bits, "{bits:#06x}");
            }
        }
    }

    #[test]
    fn element_bit_patterns_roundtrip() {
        for x in [0.0f32, -1.5, f32::MIN_POSITIVE, f32::MAX] {
            assert_eq!(f32::from_bit_pattern(x.to_bit_pattern()).to_bits(), x.to_bits());
        }
        for l in [-128i8, -1, 0, 1, 127] {
            assert_eq!(i8::from_bit_pattern(l.to_bit_pattern()), l);
        }
        for bits in [0u16, 0x3C00, 0xFC00, 0x8001] {
            let h = F16::from_u16(bits);
            assert_eq!(F16::from_bit_pattern(h.to_bit_pattern()).to_u16(), bits);
        }
    }

    #[test]
    fn buffer_ledger_charges_match_dtype_width() {
        let before = thread_live_bytes();
        let b32 = Buffer::<f32>::zeros(100);
        assert_eq!(thread_live_bytes(), before + 400);
        let b8 = Buffer::<i8>::zeros(100);
        assert_eq!(thread_live_bytes(), before + 500);
        let b16 = Buffer::<F16>::zeros(100);
        assert_eq!(thread_live_bytes(), before + 700);
        drop((b32, b8, b16));
        assert_eq!(thread_live_bytes(), before);
    }

    #[test]
    fn buffer_clone_records_a_materialized_copy() {
        let b = Buffer::<i8>::zeros(64);
        let before = thread_live_bytes();
        let copies_before = crate::profile::param_snapshot();
        let c = b.clone();
        assert_eq!(thread_live_bytes(), before + 64);
        let delta = crate::profile::param_snapshot().delta_since(&copies_before);
        assert_eq!(delta.copy_calls, 1);
        drop(c);
        assert_eq!(thread_live_bytes(), before);
    }

    #[test]
    fn pool_reuses_capacity_and_keeps_ledgers_exact() {
        let mut pool = BufferPool::<f32>::new();
        let base = thread_live_bytes();
        let a = pool.acquire(256);
        assert_eq!(thread_live_bytes(), base + 1024);
        assert_eq!((pool.hits(), pool.misses()), (0, 1));
        pool.release(a);
        // Parked capacity is off the ledgers until re-acquired.
        assert_eq!(thread_live_bytes(), base);
        assert_eq!(pool.parked(), 1);
        let b = pool.acquire(200); // fits in the parked 256-capacity vec
        assert_eq!((pool.hits(), pool.misses()), (1, 1));
        assert_eq!(thread_live_bytes(), base + 800);
        assert!(b.as_slice().iter().all(|&x| x == 0.0), "reused scratch must be zeroed");
        pool.release(b);
        let c = pool.acquire(512); // does not fit: fresh allocation
        assert_eq!((pool.hits(), pool.misses()), (1, 2));
        drop(c);
        assert_eq!(thread_live_bytes(), base);
    }

    #[test]
    fn pooled_tensors_roundtrip_through_the_pool() {
        let mut pool = BufferPool::<f32>::new();
        let mut t = pool.acquire_tensor(&[4, 8]);
        assert_eq!(t.shape(), &[4, 8]);
        t.as_mut_slice()[0] = 3.0;
        pool.release_tensor(t);
        assert_eq!(pool.parked(), 1);
        let t2 = pool.acquire_tensor(&[4, 8]);
        assert_eq!(pool.hits(), 1);
        assert_eq!(t2.as_slice()[0], 0.0, "recycled tensor must be zeroed");
        // A shared buffer cannot be reclaimed: the share keeps it alive.
        let shared = t2.clone();
        pool.release_tensor(t2);
        assert_eq!(pool.parked(), 0);
        drop(shared);
    }

    #[test]
    fn quant_tensor_stores_one_byte_per_element() {
        let t = crate::Tensor::from_vec(vec![1.0, -0.5, 0.25, 0.0], &[2, 2]).unwrap();
        let before = thread_live_bytes();
        let q = QuantTensor::quantize(&t);
        assert_eq!(thread_live_bytes(), before + 4, "4 i8 levels = 4 bytes");
        assert_eq!(q.resident_bytes(), 8);
        assert_eq!(q.shape(), &[2, 2]);
        assert!(!q.is_materialized());
        drop(q);
        assert_eq!(thread_live_bytes(), before);
    }

    #[test]
    fn quant_dense_is_lazy_and_cached() {
        let t = crate::Tensor::from_vec(vec![1.0, -1.0, 0.5, -0.25], &[4]).unwrap();
        let mut q = QuantTensor::quantize(&t);
        let before = thread_live_bytes();
        let first = q.dense().clone();
        // Materialization allocated exactly the 16-byte dense buffer.
        assert_eq!(thread_live_bytes(), before + 16);
        assert!(q.is_materialized());
        let shares_before = crate::profile::param_snapshot();
        let second = q.dense().clone();
        let delta = crate::profile::param_snapshot().delta_since(&shares_before);
        assert_eq!(delta.copy_calls, 0, "second read must share, not copy");
        assert_eq!(first, second);
        // Quantization error is bounded by half a level.
        for (&a, &b) in t.as_slice().iter().zip(first.as_slice()) {
            assert!((a - b).abs() <= q.scale() * 0.5 + 1e-6);
        }
    }

    #[test]
    fn quant_matches_wire_codec_decode() {
        // QuantTensor::quantize → to_tensor must equal the wire codec's
        // encode → decode bit for bit (same scale, same rounding).
        let mut rng = crate::Rng::seed_from(11);
        let t = rng.randn(&[13]);
        let mut w = crate::wire::ByteWriter::new();
        crate::wire::encode_tensor(&t, crate::wire::Codec::QuantI8, &mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = crate::wire::ByteReader::new(&bytes);
        let via_wire = crate::wire::decode_tensor(&mut r, crate::wire::Codec::QuantI8).unwrap();
        let via_quant = QuantTensor::quantize(&t).to_tensor();
        for (a, b) in via_wire.as_slice().iter().zip(via_quant.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dequantize_into_fills_pooled_scratch() {
        let t = crate::Tensor::from_vec(vec![2.0, -2.0, 1.0, 0.0], &[4]).unwrap();
        let q = QuantTensor::quantize(&t);
        let mut pool = BufferPool::<f32>::new();
        let mut scratch = pool.acquire_tensor(&[4]);
        q.dequantize_into(&mut scratch).unwrap();
        let direct = q.to_tensor();
        assert_eq!(scratch.as_slice(), direct.as_slice());
        let mut wrong = pool.acquire_tensor(&[5]);
        assert!(q.dequantize_into(&mut wrong).is_err());
    }

    #[test]
    fn from_levels_validates_shape() {
        assert!(QuantTensor::from_levels(vec![1, 2, 3], 0.1, &[2, 2]).is_err());
        let q = QuantTensor::from_levels(vec![1, 2, 3, 4], 0.5, &[2, 2]).unwrap();
        assert_eq!(q.to_tensor().as_slice(), &[0.5, 1.0, 1.5, 2.0]);
    }
}

use std::fmt;

/// Error type returned by fallible tensor operations.
///
/// All variants carry enough context (the offending shapes or indices) to
/// diagnose the failure without a debugger.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the length of
    /// the provided data buffer.
    ShapeDataMismatch {
        /// Requested shape.
        shape: Vec<usize>,
        /// Length of the provided buffer.
        data_len: usize,
    },
    /// Two tensors involved in a binary operation have incompatible shapes.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A matrix operation was attempted on a tensor whose rank is not 2.
    NotAMatrix {
        /// Actual shape of the tensor.
        shape: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// Shape of the tensor.
        shape: Vec<usize>,
    },
    /// A reshape was requested to a shape with a different element count.
    InvalidReshape {
        /// Current shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// An axis argument exceeded the tensor's rank.
    InvalidAxis {
        /// The offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// A convolution configuration was invalid (e.g. kernel larger than the
    /// padded input).
    InvalidConv {
        /// Human-readable description of the invalid configuration.
        reason: String,
    },
    /// An operation requiring a non-empty tensor received an empty one.
    Empty {
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A checked numeric conversion would have truncated or wrapped.
    InvalidCast {
        /// The offending value (widened to `f64`).
        value: f64,
        /// Name of the conversion target type.
        target: &'static str,
    },
    /// A serialized tensor payload was malformed.
    InvalidPayload {
        /// Human-readable description of the malformation.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, data_len } => write!(
                f,
                "shape {shape:?} implies {} elements but buffer holds {data_len}",
                shape.iter().product::<usize>()
            ),
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in `{op}`: {lhs:?} vs {rhs:?}")
            }
            TensorError::NotAMatrix { shape, op } => {
                write!(f, "`{op}` requires a rank-2 tensor, got shape {shape:?}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidReshape { from, to } => {
                write!(f, "cannot reshape {from:?} into {to:?}: element counts differ")
            }
            TensorError::InvalidAxis { axis, rank } => {
                write!(f, "axis {axis} invalid for tensor of rank {rank}")
            }
            TensorError::InvalidConv { reason } => {
                write!(f, "invalid convolution configuration: {reason}")
            }
            TensorError::Empty { op } => write!(f, "`{op}` requires a non-empty tensor"),
            TensorError::InvalidCast { value, target } => {
                write!(f, "cannot convert {value} to {target} without loss")
            }
            TensorError::InvalidPayload { reason } => {
                write!(f, "malformed tensor payload: {reason}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![4, 5],
            op: "add",
        };
        let msg = err.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[4, 5]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn shape_data_mismatch_reports_product() {
        let err = TensorError::ShapeDataMismatch {
            shape: vec![2, 3],
            data_len: 5,
        };
        assert!(err.to_string().contains('6'));
        assert!(err.to_string().contains('5'));
    }
}

//! Register-blocked matmul microkernels behind the cache-blocked drivers in
//! [`crate::Tensor`].
//!
//! The drivers ([`Tensor::matmul`](crate::Tensor::matmul) and friends)
//! partition output *rows* across the pool and hand each partition to one of
//! the two kernels here; the kernels tile each partition into MR×NR register
//! blocks with unrolled accumulators the compiler keeps in vector registers.
//!
//! # Element spec (the determinism contract)
//!
//! Every output element is defined by one serial fused-multiply-add chain:
//!
//! ```text
//! acc = 0.0;  for p in 0..k { acc = a_ip.mul_add(b_pj, acc) }  out_ij = acc
//! ```
//!
//! Each kernel has several code paths (full MR×NR tiles, row remainders,
//! column remainders), and *which* path computes a given element depends on
//! where the parallel partition boundary falls — so every path implements
//! exactly this chain, making each element's bits a function of the operands
//! alone, independent of tiling, pool width, and partition. (`f32::mul_add`
//! is the IEEE fused operation — one rounding — on every path; with the
//! workspace's x86-64-v3 baseline it compiles to a single FMA instruction.)
//!
//! # Tile shape
//!
//! MR = 4 rows × NR = 16 columns: the accumulator block is 8 AVX2 registers,
//! the streamed `b` tile 2 more, and the broadcast coefficient 1 — leaving
//! headroom in the 16-register file. Per reduction step the tile performs 8
//! vector FMAs against 3 loads (2 for the `b` tile, 1 for the packed
//! coefficients), so the loop is FMA-throughput-bound rather than
//! load-bound. `a` coefficients are packed once per row-quad into a
//! contiguous `[[f32; MR]]` scratch (amortized over `n / NR` tiles), which
//! also lets [`Tensor::t_matmul`](crate::Tensor::t_matmul)'s column-major
//! coefficient stride reuse the same kernel.

/// Rows per register tile.
const MR: usize = 4;
/// Columns per register tile (two 8-lane AVX2 vectors).
const NR: usize = 16;
/// Independent accumulator chains in the dot-product kernel — enough
/// in-flight FMAs to cover the FMA latency×throughput product.
const DR: usize = 8;

/// Accumulating-style kernel for a block of output rows of `out = A · B`,
/// shared by `matmul` (`a` row-major: strides `k`, 1) and `t_matmul`
/// (`a` column-major view: strides 1, `m`).
///
/// `out_rows` must be zero-filled (the drivers hand out freshly zeroed
/// tensors); the kernel overwrites it with the fold described in the module
/// docs, which is bit-identical to `+=`-ing into zeros in ascending-`p`
/// order.
pub(crate) fn axpy_row_block(
    out_rows: &mut [f32],
    i0: usize,
    a: &[f32],
    a_row_stride: usize,
    a_col_stride: usize,
    b: &[f32],
    k: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    // Packed coefficient scratch, reused across the partition's row-quads.
    let mut pa: Vec<[f32; MR]> = Vec::with_capacity(k);
    let mut rest = out_rows;
    let mut i = i0;
    while rest.len() >= MR * n {
        let (r0, tail) = rest.split_at_mut(n);
        let (r1, tail) = tail.split_at_mut(n);
        let (r2, tail) = tail.split_at_mut(n);
        let (r3, tail) = tail.split_at_mut(n);
        rest = tail;
        pa.clear();
        pa.extend((0..k).map(|p| {
            let base = i * a_row_stride + p * a_col_stride;
            [
                a[base],
                a[base + a_row_stride],
                a[base + 2 * a_row_stride],
                a[base + 3 * a_row_stride],
            ]
        }));
        quad_rows([r0, r1, r2, r3], &pa, b, n);
        i += MR;
    }
    while !rest.is_empty() {
        let (r0, tail) = rest.split_at_mut(n);
        rest = tail;
        one_row(r0, i, a, a_row_stride, a_col_stride, b, k, n);
        i += 1;
    }
}

/// MR×NR register tiles over four output rows; `pa[p]` holds the four `a`
/// coefficients of reduction step `p`.
fn quad_rows(mut rows: [&mut [f32]; MR], pa: &[[f32; MR]], b: &[f32], n: usize) {
    let mut j = 0;
    while j + NR <= n {
        let mut acc = [[0.0f32; NR]; MR];
        for (p, ca) in pa.iter().enumerate() {
            let Some((bt, _)) = b[p * n + j..].split_first_chunk::<NR>() else {
                break; // unreachable: j + NR <= n and p < k
            };
            for (accr, &c) in acc.iter_mut().zip(ca) {
                for (av, &bv) in accr.iter_mut().zip(bt) {
                    *av = c.mul_add(bv, *av);
                }
            }
        }
        for (accr, row) in acc.iter().zip(rows.iter_mut()) {
            row[j..j + NR].copy_from_slice(accr);
        }
        j += NR;
    }
    if j < n {
        // Column remainder: same per-element chain, folded through the
        // (zeroed) output memory instead of a fixed-width register tile.
        for (p, ca) in pa.iter().enumerate() {
            let b_row = &b[p * n + j..p * n + n];
            for (row, &c) in rows.iter_mut().zip(ca) {
                for (o, &bv) in row[j..].iter_mut().zip(b_row) {
                    *o = c.mul_add(bv, *o);
                }
            }
        }
    }
}

/// Row remainder: one output row, 1×NR register tiles plus a column tail.
fn one_row(
    out_row: &mut [f32],
    i: usize,
    a: &[f32],
    a_row_stride: usize,
    a_col_stride: usize,
    b: &[f32],
    k: usize,
    n: usize,
) {
    let mut j = 0;
    while j + NR <= n {
        let mut acc = [0.0f32; NR];
        for p in 0..k {
            let c = a[i * a_row_stride + p * a_col_stride];
            let Some((bt, _)) = b[p * n + j..].split_first_chunk::<NR>() else {
                break; // unreachable: j + NR <= n and p < k
            };
            for (av, &bv) in acc.iter_mut().zip(bt) {
                *av = c.mul_add(bv, *av);
            }
        }
        out_row[j..j + NR].copy_from_slice(&acc);
        j += NR;
    }
    if j < n {
        for p in 0..k {
            let c = a[i * a_row_stride + p * a_col_stride];
            let b_row = &b[p * n + j..p * n + n];
            for (o, &bv) in out_row[j..].iter_mut().zip(b_row) {
                *o = c.mul_add(bv, *o);
            }
        }
    }
}

/// Dot-product kernel for a block of output rows of `matmul_t`
/// (`a` is `[m, k]`, `b` is `[n, k]`, both reduced along their contiguous
/// axis).
///
/// Each output element is a strictly serial ascending-`p` FMA chain (the
/// module-level spec) — vectorizing *along* the reduction would change the
/// association order, so the kernel instead runs [`DR`] independent chains
/// (one per output column) to cover FMA latency.
pub(crate) fn dot_row_block(
    out_rows: &mut [f32],
    i0: usize,
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
) {
    for (local, out_row) in out_rows.chunks_exact_mut(n).enumerate() {
        let i = i0 + local;
        let a_row = &a[i * k..(i + 1) * k];
        let mut chunks = out_row.chunks_exact_mut(DR);
        let mut j = 0;
        for out_chunk in &mut chunks {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let b4 = &b[(j + 4) * k..(j + 5) * k];
            let b5 = &b[(j + 5) * k..(j + 6) * k];
            let b6 = &b[(j + 6) * k..(j + 7) * k];
            let b7 = &b[(j + 7) * k..(j + 8) * k];
            let mut acc = [0.0f32; DR];
            for (p, &av) in a_row.iter().enumerate() {
                acc[0] = av.mul_add(b0[p], acc[0]);
                acc[1] = av.mul_add(b1[p], acc[1]);
                acc[2] = av.mul_add(b2[p], acc[2]);
                acc[3] = av.mul_add(b3[p], acc[3]);
                acc[4] = av.mul_add(b4[p], acc[4]);
                acc[5] = av.mul_add(b5[p], acc[5]);
                acc[6] = av.mul_add(b6[p], acc[6]);
                acc[7] = av.mul_add(b7[p], acc[7]);
            }
            out_chunk.copy_from_slice(&acc);
            j += DR;
        }
        for o in chunks.into_remainder() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc = av.mul_add(bv, acc);
            }
            *o = acc;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The module-level element spec, written as the naive triple loop.
    fn reference_matmul(
        a: &[f32],
        ars: usize,
        acs: usize,
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc = a[i * ars + p * acs].mul_add(b[p * n + j], acc);
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn fill_pattern(len: usize, salt: u32) -> Vec<f32> {
        // Deterministic, sign-mixed, non-dyadic values so reassociation or
        // contraction differences would show up in the low bits.
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt);
                (x % 2_001) as f32 / 997.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn axpy_matches_reference_across_shapes_and_partitions() {
        // Shapes straddle the MR×NR tile: remainder rows, remainder
        // columns, degenerate k.
        for &(m, k, n) in &[(1, 1, 1), (4, 3, 16), (5, 7, 17), (9, 16, 33), (8, 2, 15)] {
            let a = fill_pattern(m * k, 1);
            let b = fill_pattern(k * n, 2);
            let want = reference_matmul(&a, k, 1, &b, m, k, n);
            // Whole-output call.
            let mut out = vec![0.0f32; m * n];
            axpy_row_block(&mut out, 0, &a, k, 1, &b, k, n);
            assert_eq!(out, want, "m={m} k={k} n={n}");
            // Partitioned at every row boundary: the path an element takes
            // (quad vs. remainder) shifts, the bits must not.
            for split in 1..m {
                let mut out = vec![0.0f32; m * n];
                let (lo, hi) = out.split_at_mut(split * n);
                axpy_row_block(lo, 0, &a, k, 1, &b, k, n);
                axpy_row_block(hi, split, &a, k, 1, &b, k, n);
                assert_eq!(out, want, "m={m} k={k} n={n} split={split}");
            }
        }
    }

    #[test]
    fn axpy_strided_coefficients_match_reference() {
        // t_matmul layout: `a` is [k, m], coefficient strides (1, m).
        let (m, k, n) = (6, 5, 19);
        let a = fill_pattern(k * m, 3);
        let b = fill_pattern(k * n, 4);
        let want = reference_matmul(&a, 1, m, &b, m, k, n);
        let mut out = vec![0.0f32; m * n];
        axpy_row_block(&mut out, 0, &a, 1, m, &b, k, n);
        assert_eq!(out, want);
    }

    #[test]
    fn dot_matches_serial_chain_across_partitions() {
        for &(m, k, n) in &[(1, 1, 1), (3, 8, 8), (5, 13, 11), (4, 16, 24)] {
            let a = fill_pattern(m * k, 5);
            let b = fill_pattern(n * k, 6);
            let mut want = vec![0.0f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc = a[i * k + p].mul_add(b[j * k + p], acc);
                    }
                    want[i * n + j] = acc;
                }
            }
            for split in 0..m {
                let mut out = vec![0.0f32; m * n];
                let (lo, hi) = out.split_at_mut(split * n);
                dot_row_block(lo, 0, &a, &b, k, n);
                dot_row_block(hi, split, &a, &b, k, n);
                assert_eq!(out, want, "m={m} k={k} n={n} split={split}");
            }
        }
    }
}

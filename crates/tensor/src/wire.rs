//! Zero-copy binary wire codec for tensor payloads.
//!
//! The FL transport needs a serialized representation of model parameters:
//! byte-metered rounds, compressed update exchange and the simulated
//! network all operate on wire bytes, not on in-process `ModelParams`
//! handles. This module defines that format at the tensor level; the
//! model-level framing (layer/tensor structure) lives in
//! `dinar_nn::snapshot` and is built from these primitives.
//!
//! # Zero-copy contract
//!
//! Encoding reads straight out of the tensor's copy-on-write `Arc` buffer
//! via [`Tensor::as_slice`] — it never materializes a private copy, so
//! encoding a snapshot taken with `share()` costs the serialization pass
//! and nothing else. Decoding builds exactly one fresh buffer per tensor,
//! which is then shared by refcount like any other tensor storage.
//!
//! # Format
//!
//! All integers are little-endian. A payload stream opens with a header —
//! magic [`MAGIC`], format version u16, codec tag u8 — written and read by
//! [`write_header`]/[`read_header`]. Each tensor frame is:
//!
//! ```text
//! rank: u32, dims: rank × u32, payload (per codec)
//! ```
//!
//! Codec payloads:
//!
//! * [`Codec::F32`] — lossless: `len × u32` raw IEEE-754 bit patterns.
//!   `decode(encode(x))` is bit-identical for every value, NaN payloads
//!   and signed zeros included.
//! * [`Codec::Sign1`] — 1-bit sign compression (signSGD-style): one f32
//!   scale (the mean |x|, accumulated sequentially in f64 so the scale is
//!   identical for any worker-pool width), then `ceil(len/8)` bytes of
//!   LSB-first sign bits (1 = non-negative). Decodes to `±scale`.
//! * [`Codec::QuantI8`] — linear 8-bit quantization: one f32 scale
//!   (`max |x| / 127`), then `len` i8 levels. Decodes to `level × scale`.
//!
//! # Hardening
//!
//! Every read is bounds-checked: truncated buffers, oversized length
//! headers, unknown tags and nonzero padding bits all surface as typed
//! [`WireError`]s — a corrupted stream can never panic the decoder or make
//! it allocate unbounded memory (payload byte counts are validated against
//! the remaining buffer *before* any allocation). Integer narrowing goes
//! through `try_from` or the checked helpers in [`crate::cast`]; lint rule
//! L017 keeps byte-level (de)serialization confined to this module and
//! bans bare narrowing casts inside it.

use crate::storage::QuantTensor;
use crate::{cast, Tensor};
use std::fmt;

/// Leading magic of every wire stream: `DNWR` ("DINAR wire").
pub const MAGIC: [u8; 4] = *b"DNWR";

/// Current wire format version.
pub const FORMAT_VERSION: u16 = 1;

/// Maximum tensor rank the decoder accepts. Nothing in the model zoo
/// exceeds rank 4; 8 leaves headroom while keeping a corrupted rank header
/// from driving a 4-billion-iteration dim loop.
pub const MAX_RANK: usize = 8;

/// Error produced by the wire codec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// Bytes remained after the final frame was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// The stream does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The stream's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// The version found.
        found: u16,
    },
    /// The codec tag byte is not in the catalog.
    UnknownCodec {
        /// The tag found.
        tag: u8,
    },
    /// A length header (rank, dim, element count, byte count) exceeds what
    /// this platform / format can represent.
    LengthOverflow {
        /// Which quantity overflowed.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Declared element count and decoded payload disagree.
    ShapeMismatch {
        /// Elements the shape header declares.
        declared: usize,
        /// Elements the payload actually produced.
        actual: usize,
    },
    /// Padding bits past the last packed element were not zero.
    NonzeroPadding {
        /// Byte offset of the offending padding byte within the payload.
        at: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated wire buffer: read needs {need} bytes, {have} remain")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the final wire frame")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad wire magic {found:02x?} (expected {MAGIC:02x?})")
            }
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire format version {found} (expected {FORMAT_VERSION})")
            }
            WireError::UnknownCodec { tag } => write!(f, "unknown wire codec tag {tag:#04x}"),
            WireError::LengthOverflow { what, value } => {
                write!(f, "wire length header overflow: {what} = {value}")
            }
            WireError::ShapeMismatch { declared, actual } => {
                write!(
                    f,
                    "wire shape mismatch: header declares {declared} element(s), payload \
                     decoded {actual}"
                )
            }
            WireError::NonzeroPadding { at } => {
                write!(f, "nonzero padding bit(s) at payload byte {at}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Codec result alias.
pub type WireResult<T> = std::result::Result<T, WireError>;

/// The update encodings the wire format supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Codec {
    /// Lossless raw f32 bit patterns (4 bytes/element).
    F32,
    /// 1-bit sign compression with a shared f32 scale (~1 bit/element).
    Sign1,
    /// Linear 8-bit quantization with a shared f32 scale (1 byte/element).
    QuantI8,
}

impl Codec {
    /// The codec's wire tag byte.
    pub fn tag(self) -> u8 {
        match self {
            Codec::F32 => 0x00,
            Codec::Sign1 => 0x01,
            Codec::QuantI8 => 0x02,
        }
    }

    /// Looks a codec up by its wire tag.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnknownCodec`] for a tag outside the catalog.
    pub fn from_tag(tag: u8) -> WireResult<Codec> {
        match tag {
            0x00 => Ok(Codec::F32),
            0x01 => Ok(Codec::Sign1),
            0x02 => Ok(Codec::QuantI8),
            _ => Err(WireError::UnknownCodec { tag }),
        }
    }

    /// Stable lowercase name for telemetry labels and bench rows.
    pub fn name(self) -> &'static str {
        match self {
            Codec::F32 => "f32",
            Codec::Sign1 => "sign1",
            Codec::QuantI8 => "qi8",
        }
    }

    /// Whether decode(encode(x)) can differ from `x`.
    pub fn is_lossy(self) -> bool {
        !matches!(self, Codec::F32)
    }

    /// All codecs, in tag order.
    pub fn all() -> [Codec; 3] {
        [Codec::F32, Codec::Sign1, Codec::QuantI8]
    }
}

/// Converts a wire `u32` length field to a `usize` index.
fn len_to_usize(x: u32, what: &'static str) -> WireResult<usize> {
    usize::try_from(x).map_err(|_| WireError::LengthOverflow {
        what,
        value: u64::from(x),
    })
}

/// Converts an in-memory count to a wire `u32` length field.
fn len_to_u32(n: usize, what: &'static str) -> WireResult<u32> {
    u32::try_from(n).map_err(|_| WireError::LengthOverflow {
        what,
        value: u64::try_from(n).unwrap_or(u64::MAX),
    })
}

/// An append-only little-endian byte sink for wire frames.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// An empty writer with `capacity` bytes pre-reserved (pair with
    /// [`encoded_tensor_len`] to make encoding a single allocation).
    pub fn with_capacity(capacity: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends an `i8` as its raw byte.
    pub fn put_i8(&mut self, x: i8) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends an `f32` as its raw little-endian IEEE-754 bit pattern
    /// (bit-exact for NaN payloads and signed zeros).
    pub fn put_f32(&mut self, x: f32) {
        self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A bounds-checked little-endian reader over a wire buffer.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on an exhausted buffer.
    pub fn read_u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on an exhausted buffer.
    pub fn read_u16(&mut self) -> WireResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on an exhausted buffer.
    pub fn read_u32(&mut self) -> WireResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on an exhausted buffer.
    pub fn read_u64(&mut self) -> WireResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `i8` from its raw byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on an exhausted buffer.
    pub fn read_i8(&mut self) -> WireResult<i8> {
        Ok(i8::from_le_bytes([self.take(1)?[0]]))
    }

    /// Reads an `f32` bit pattern (bit-exact, NaN payloads included).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on an exhausted buffer.
    pub fn read_f32(&mut self) -> WireResult<f32> {
        Ok(f32::from_bits(self.read_u32()?))
    }

    /// Asserts the buffer is fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> WireResult<()> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Writes the stream header: magic, format version, codec tag.
pub fn write_header(w: &mut ByteWriter, codec: Codec) {
    w.put_bytes(&MAGIC);
    w.put_u16(FORMAT_VERSION);
    w.put_u8(codec.tag());
}

/// Byte length of the stream header.
pub const HEADER_LEN: usize = 7;

/// Reads and validates the stream header, returning the codec.
///
/// # Errors
///
/// Returns [`WireError::BadMagic`], [`WireError::UnsupportedVersion`],
/// [`WireError::UnknownCodec`] or [`WireError::Truncated`].
pub fn read_header(r: &mut ByteReader<'_>) -> WireResult<Codec> {
    let m = r.take(4)?;
    if m != MAGIC {
        return Err(WireError::BadMagic {
            found: [m[0], m[1], m[2], m[3]],
        });
    }
    let version = r.read_u16()?;
    if version != FORMAT_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    Codec::from_tag(r.read_u8()?)
}

/// Exact encoded byte length of one tensor frame under `codec` — the shape
/// header plus the codec payload. Use for buffer pre-sizing and for byte
/// metering without encoding.
pub fn encoded_tensor_len(t: &Tensor, codec: Codec) -> usize {
    let len = t.len();
    let header = 4 + 4 * t.shape().len();
    let payload = match codec {
        Codec::F32 => 4 * len,
        Codec::Sign1 => 4 + len.div_ceil(8),
        Codec::QuantI8 => 4 + len,
    };
    header + payload
}

/// Encodes one tensor frame, reading directly from the tensor's shared
/// buffer (no copy-on-write materialization).
///
/// # Errors
///
/// Returns [`WireError::LengthOverflow`] if the rank or a dimension does
/// not fit the `u32` wire fields.
pub fn encode_tensor(t: &Tensor, codec: Codec, w: &mut ByteWriter) -> WireResult<()> {
    let shape = t.shape();
    w.put_u32(len_to_u32(shape.len(), "rank")?);
    for &d in shape {
        w.put_u32(len_to_u32(d, "dim")?);
    }
    let xs = t.as_slice();
    match codec {
        Codec::F32 => {
            for &x in xs {
                w.put_f32(x);
            }
        }
        Codec::Sign1 => {
            w.put_f32(sign1_scale(xs));
            for chunk in xs.chunks(8) {
                let mut byte = 0u8;
                for (bit, &x) in chunk.iter().enumerate() {
                    if x.is_sign_positive() {
                        byte |= 1 << bit;
                    }
                }
                w.put_u8(byte);
            }
        }
        Codec::QuantI8 => {
            let scale = quant_scale(xs);
            w.put_f32(scale);
            let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
            for &x in xs {
                w.put_i8(cast::f32_to_i8_sat(x * inv));
            }
        }
    }
    Ok(())
}

/// Decodes one tensor frame into fresh shared storage.
///
/// Validates the shape header and the payload byte budget against the
/// remaining buffer *before* allocating, so an overflowing length header
/// is rejected rather than honored.
///
/// # Errors
///
/// Returns a typed [`WireError`] for any truncated, oversized or corrupt
/// frame; never panics.
pub fn decode_tensor(r: &mut ByteReader<'_>, codec: Codec) -> WireResult<Tensor> {
    let rank = len_to_usize(r.read_u32()?, "rank")?;
    if rank > MAX_RANK {
        return Err(WireError::LengthOverflow {
            what: "rank",
            value: u64::try_from(rank).unwrap_or(u64::MAX),
        });
    }
    let mut shape = Vec::with_capacity(rank);
    let mut len = 1usize;
    for _ in 0..rank {
        let d = len_to_usize(r.read_u32()?, "dim")?;
        len = len
            .checked_mul(d)
            .ok_or(WireError::LengthOverflow {
                what: "element count",
                value: u64::MAX,
            })?;
        shape.push(d);
    }
    let data = match codec {
        Codec::F32 => {
            let bytes = r.take(len.checked_mul(4).ok_or(WireError::LengthOverflow {
                what: "payload bytes",
                value: u64::MAX,
            })?)?;
            let mut data = Vec::with_capacity(len);
            for b in bytes.chunks_exact(4) {
                data.push(f32::from_bits(u32::from_le_bytes([b[0], b[1], b[2], b[3]])));
            }
            data
        }
        Codec::Sign1 => {
            let scale = r.read_f32()?;
            let packed = r.take(len.div_ceil(8))?;
            let mut data = Vec::with_capacity(len);
            for (i, &byte) in packed.iter().enumerate() {
                let used = (len - 8 * i).min(8);
                // A corrupted tail byte with stray high bits would decode
                // "successfully" under a laxer reader; reject it.
                if used < 8 && byte >> used != 0 {
                    return Err(WireError::NonzeroPadding { at: i });
                }
                for bit in 0..used {
                    data.push(if byte >> bit & 1 == 1 { scale } else { -scale });
                }
            }
            data
        }
        Codec::QuantI8 => {
            // Route through native i8 storage and dequantize eagerly;
            // callers that want to stay quantized use
            // [`decode_tensor_quant`] directly.
            let q = decode_quant_payload(r, len, &shape)?;
            return Ok(q.to_tensor());
        }
    };
    let actual = data.len();
    Tensor::from_vec(data, &shape).map_err(|_| WireError::ShapeMismatch {
        declared: len,
        actual,
    })
}

/// Decodes one `QuantI8` tensor frame natively into `i8` storage: one byte
/// per element lands in a [`Buffer<i8>`](crate::storage::Buffer) instead of
/// a four-byte `f32`, and the dense form is materialized lazily at first
/// read ([`QuantTensor::dense`](crate::storage::QuantTensor::dense)).
///
/// # Errors
///
/// Returns a typed [`WireError`] for any truncated, oversized or corrupt
/// frame; never panics.
pub fn decode_tensor_quant(r: &mut ByteReader<'_>) -> WireResult<QuantTensor> {
    let rank = len_to_usize(r.read_u32()?, "rank")?;
    if rank > MAX_RANK {
        return Err(WireError::LengthOverflow {
            what: "rank",
            value: u64::try_from(rank).unwrap_or(u64::MAX),
        });
    }
    let mut shape = Vec::with_capacity(rank);
    let mut len = 1usize;
    for _ in 0..rank {
        let d = len_to_usize(r.read_u32()?, "dim")?;
        len = len
            .checked_mul(d)
            .ok_or(WireError::LengthOverflow {
                what: "element count",
                value: u64::MAX,
            })?;
        shape.push(d);
    }
    decode_quant_payload(r, len, &shape)
}

/// Shared `QuantI8` payload decoder: scale, then `len` raw level bytes
/// straight into `i8` storage (bounds-checked before allocating).
fn decode_quant_payload(
    r: &mut ByteReader<'_>,
    len: usize,
    shape: &[usize],
) -> WireResult<QuantTensor> {
    let scale = r.read_f32()?;
    let bytes = r.take(len)?;
    let mut levels = Vec::with_capacity(len);
    for &b in bytes {
        levels.push(i8::from_le_bytes([b]));
    }
    let actual = levels.len();
    QuantTensor::from_levels(levels, scale, shape).map_err(|_| WireError::ShapeMismatch {
        declared: len,
        actual,
    })
}

/// The Sign1 shared scale: mean |x|, accumulated sequentially in f64 so
/// the result is bit-identical for any worker-pool width. Non-finite
/// entries contribute nothing (a NaN-poisoned update must not produce a
/// NaN scale that wipes out the whole tensor on decode).
fn sign1_scale(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for &x in xs {
        if x.is_finite() {
            sum += f64::from(x).abs();
        }
    }
    cast::f64_to_f32(sum / cast::len_to_f64(xs.len()))
}

/// The QuantI8 shared scale: max |x| / 127 over the finite entries.
/// Crate-visible so [`QuantTensor::quantize`](crate::storage::QuantTensor)
/// produces bit-identical levels to the wire codec.
pub(crate) fn quant_scale(xs: &[f32]) -> f32 {
    let mut max_abs = 0.0f32;
    for &x in xs {
        if x.is_finite() {
            max_abs = max_abs.max(x.abs());
        }
    }
    max_abs / 127.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    fn roundtrip(t: &Tensor, codec: Codec) -> Tensor {
        let mut w = ByteWriter::with_capacity(encoded_tensor_len(t, codec));
        encode_tensor(t, codec, &mut w).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), encoded_tensor_len(t, codec), "predicted len");
        let mut r = ByteReader::new(&bytes);
        let back = decode_tensor(&mut r, codec).unwrap();
        r.finish().unwrap();
        back
    }

    #[test]
    fn writer_reader_primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_i8(-100);
        w.put_f32(f32::from_bits(0x7FC0_1234)); // NaN with payload
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert_eq!(r.read_u16().unwrap(), 0xBEEF);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.read_i8().unwrap(), -100);
        assert_eq!(r.read_f32().unwrap().to_bits(), 0x7FC0_1234);
        r.finish().unwrap();
    }

    #[test]
    fn reader_reports_truncation_and_trailing() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(
            r.read_u32().unwrap_err(),
            WireError::Truncated { need: 4, have: 3 }
        );
        assert_eq!(r.read_u8().unwrap(), 1);
        assert_eq!(r.finish().unwrap_err(), WireError::TrailingBytes { extra: 2 });
    }

    #[test]
    fn header_roundtrip_and_rejections() {
        for codec in Codec::all() {
            let mut w = ByteWriter::new();
            write_header(&mut w, codec);
            let bytes = w.into_bytes();
            assert_eq!(bytes.len(), HEADER_LEN);
            let mut r = ByteReader::new(&bytes);
            assert_eq!(read_header(&mut r).unwrap(), codec);
        }
        let mut bad_magic = vec![b'X', b'N', b'W', b'R', 1, 0, 0];
        let mut r = ByteReader::new(&bad_magic);
        assert!(matches!(read_header(&mut r), Err(WireError::BadMagic { .. })));
        bad_magic[..4].copy_from_slice(&MAGIC);
        bad_magic[4] = 99;
        let mut r = ByteReader::new(&bad_magic);
        assert_eq!(
            read_header(&mut r).unwrap_err(),
            WireError::UnsupportedVersion { found: 99 }
        );
        let mut bad_codec = Vec::new();
        let mut w = ByteWriter::new();
        write_header(&mut w, Codec::F32);
        bad_codec.extend_from_slice(&w.into_bytes());
        bad_codec[6] = 0x7F;
        let mut r = ByteReader::new(&bad_codec);
        assert_eq!(
            read_header(&mut r).unwrap_err(),
            WireError::UnknownCodec { tag: 0x7F }
        );
    }

    #[test]
    fn f32_codec_is_bit_identical_including_nan_payloads() {
        let special = vec![
            f32::from_bits(0x7FC0_0001), // NaN, nonzero payload
            f32::from_bits(0xFF80_0000), // -inf
            f32::from_bits(0x0000_0001), // subnormal
            -0.0,
            0.0,
            f32::MAX,
            f32::MIN,
        ];
        let t = Tensor::from_vec(special.clone(), &[7]).unwrap();
        let back = roundtrip(&t, Codec::F32);
        let got: Vec<u32> = back.as_slice().iter().map(|x| x.to_bits()).collect();
        let want: Vec<u32> = special.iter().map(|x| x.to_bits()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn lossless_roundtrip_over_random_shapes() {
        let mut rng = Rng::seed_from(0xD1AB);
        for trial in 0..50 {
            let rank = trial % 4;
            let shape: Vec<usize> = (0..rank).map(|_| rng.below(7)).collect();
            let t = rng.randn(&shape);
            let back = roundtrip(&t, Codec::F32);
            assert_eq!(back.shape(), t.shape());
            let got: Vec<u32> = back.as_slice().iter().map(|x| x.to_bits()).collect();
            let want: Vec<u32> = t.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, want, "trial {trial} shape {shape:?}");
        }
    }

    #[test]
    fn empty_and_odd_length_tensors_roundtrip_under_all_codecs() {
        let mut rng = Rng::seed_from(7);
        for codec in Codec::all() {
            for shape in [vec![], vec![0], vec![1], vec![3], vec![7], vec![31], vec![3, 0, 5]] {
                let t = rng.randn(&shape);
                let back = roundtrip(&t, codec);
                assert_eq!(back.shape(), t.shape(), "{codec:?} {shape:?}");
                assert_eq!(back.len(), t.len());
            }
        }
    }

    #[test]
    fn sign1_decodes_to_signed_scale() {
        let t = Tensor::from_vec(vec![3.0, -1.0, 0.5, -0.5, 2.0], &[5]).unwrap();
        let back = roundtrip(&t, Codec::Sign1);
        // scale = mean |x| = (3 + 1 + 0.5 + 0.5 + 2) / 5 = 1.4
        let s = 1.4f32;
        let got = back.as_slice();
        let want = [s, -s, s, -s, s];
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-6, "{got:?}");
        }
    }

    #[test]
    fn sign1_and_qi8_are_idempotent() {
        // Lossy codecs must be stable on their own output: encoding a
        // decoded tensor again reproduces it bit-exactly (the fixed point
        // the error-feedback loop converges toward).
        let mut rng = Rng::seed_from(42);
        for codec in [Codec::Sign1, Codec::QuantI8] {
            let t = rng.randn(&[67]);
            let once = roundtrip(&t, codec);
            let twice = roundtrip(&once, codec);
            let got: Vec<u32> = twice.as_slice().iter().map(|x| x.to_bits()).collect();
            let want: Vec<u32> = once.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, want, "{codec:?}");
        }
    }

    #[test]
    fn qi8_error_is_bounded_by_half_step() {
        let mut rng = Rng::seed_from(11);
        let t = rng.randn(&[256]);
        let max_abs = t.as_slice().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let step = max_abs / 127.0;
        let back = roundtrip(&t, Codec::QuantI8);
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= step * 0.5 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn non_finite_inputs_do_not_poison_lossy_scales() {
        let t = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, -2.0, 2.0], &[4]).unwrap();
        for codec in [Codec::Sign1, Codec::QuantI8] {
            let back = roundtrip(&t, codec);
            assert!(
                back.as_slice().iter().all(|x| x.is_finite()),
                "{codec:?}: {:?}",
                back.as_slice()
            );
        }
    }

    #[test]
    fn decoder_rejects_oversized_length_headers_without_allocating() {
        // rank=1, dim=u32::MAX declares ~17 GB of f32 payload; the decoder
        // must bounds-check before reserving.
        let mut w = ByteWriter::new();
        w.put_u32(1);
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            decode_tensor(&mut r, Codec::F32),
            Err(WireError::Truncated { .. })
        ));

        // An absurd rank is rejected outright.
        let mut w = ByteWriter::new();
        w.put_u32(1_000_000);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            decode_tensor(&mut r, Codec::F32).unwrap_err(),
            WireError::LengthOverflow { what: "rank", value: 1_000_000 }
        );

        // Element-count overflow from plausible dims.
        let mut w = ByteWriter::new();
        w.put_u32(8);
        for _ in 0..8 {
            w.put_u32(u32::MAX);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            decode_tensor(&mut r, Codec::F32),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn sign1_rejects_nonzero_padding() {
        let t = Tensor::from_vec(vec![1.0, -1.0, 1.0], &[3]).unwrap();
        let mut w = ByteWriter::new();
        encode_tensor(&t, Codec::Sign1, &mut w).unwrap();
        let mut bytes = w.into_bytes();
        // Tamper with a padding bit above the 3 used bits of the last byte.
        let last = bytes.len() - 1;
        bytes[last] |= 1 << 6;
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            decode_tensor(&mut r, Codec::Sign1).unwrap_err(),
            WireError::NonzeroPadding { at: 0 }
        );
    }

    #[test]
    fn corrupted_streams_error_and_never_panic() {
        // Seeded fuzz loop: truncations of a valid frame always error;
        // random byte flips either decode (payload damage) or error with a
        // typed WireError — no input may panic or over-allocate.
        let mut rng = Rng::seed_from(0xFEED);
        let t = rng.randn(&[5, 7]);
        for codec in Codec::all() {
            let mut w = ByteWriter::new();
            encode_tensor(&t, codec, &mut w).unwrap();
            let bytes = w.into_bytes();
            for cut in 0..bytes.len() {
                let mut r = ByteReader::new(&bytes[..cut]);
                let res = decode_tensor(&mut r, codec).and_then(|_| r.finish());
                assert!(res.is_err(), "{codec:?}: prefix of {cut} bytes decoded");
            }
            for _ in 0..200 {
                let mut corrupt = bytes.clone();
                let flips = 1 + rng.below(3);
                for _ in 0..flips {
                    let i = rng.below(corrupt.len());
                    let bit = rng.below(8);
                    corrupt[i] ^= 1u8 << bit;
                }
                let mut r = ByteReader::new(&corrupt);
                // Must return — Ok or a typed error — without panicking.
                let _ = decode_tensor(&mut r, codec).and_then(|_| r.finish());
            }
        }
    }
}

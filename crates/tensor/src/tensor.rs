use crate::json::{Json, ToJson};
use crate::{alloc, cast, par, profile, sanitize, Result, TensorError};
use std::sync::Arc;

/// Minimum multiply-add count before a matmul-family kernel fans out to the
/// pool; below this the spawn cost dominates the arithmetic.
const PAR_MIN_FLOPS: usize = 32 * 1024;

/// Minimum element count before an elementwise op fans out to the pool.
const PAR_MIN_ELEMS: usize = 16 * 1024;

use crate::kernels::{axpy_row_block, dot_row_block};

/// Minimum rows per parallel part so each part clears [`PAR_MIN_FLOPS`]
/// multiply-adds (`k * n` per row).
fn min_rows_for(k: usize, n: usize) -> usize {
    (PAR_MIN_FLOPS / (k * n).max(1)).max(1)
}

/// Reference-counted storage behind a [`Tensor`]: the copy-on-write unit.
///
/// Since the storage/backend split this is the `f32` instantiation of the
/// dtype-generic [`storage::Buffer`](crate::storage::Buffer), which owns the
/// flat element vector and is the single place where the
/// [`alloc`](crate::alloc) ledgers see tensor memory: construction records
/// the allocation, dropping the last `Arc` records the deallocation (on the
/// dropping thread, preserving the cross-thread two-ledger semantics), and
/// `Clone` — reached only through `Arc::make_mut` when a *shared* buffer is
/// written — records the allocation of the materialized private copy plus a
/// [`profile::record_buffer_copy`] tick for the copy-traffic counters.
type Buf = crate::storage::Buffer<f32>;

/// A dense, contiguous, row-major `f32` tensor with copy-on-write storage.
///
/// `Tensor` is the single numeric container used across the DINAR
/// reproduction: model parameters, gradients, activations, dataset features
/// and defense buffers are all tensors. Storage is a shared, immutable,
/// `Arc`-backed buffer: cloning a tensor (and hence a `ModelParams` snapshot
/// hopping through the FL protocol) is an O(1) refcount bump, and the first
/// in-place write of a shared buffer materializes a private copy
/// (`Arc::make_mut`). Reads never copy; writers never alias.
///
/// Buffer construction and COW materialization register their sizes with the
/// [`alloc`](crate::alloc) accounting module so that defense memory overheads
/// (Table 3 of the paper) can be measured, and with the
/// [`profile`](crate::profile) copy counters that feed the `bench_params`
/// artifact.
///
/// # Example
///
/// ```
/// use dinar_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(x.shape(), &[2, 3]);
/// assert_eq!(x.sum(), 21.0);
/// # Ok::<(), dinar_tensor::TensorError>(())
/// ```
#[derive(Debug)]
pub struct Tensor {
    buf: Arc<Buf>,
    shape: Vec<usize>,
}

impl ToJson for Tensor {
    /// Serializes as `{"data": [...], "shape": [...]}` — the same envelope
    /// the earlier `serde` derive produced, so old checkpoints keep loading.
    fn to_json(&self) -> Json {
        Json::obj([
            ("data", self.buf.data.to_json()),
            ("shape", self.shape.to_json()),
        ])
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor from an owned buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the product of `shape`
    /// does not equal `data.len()`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                data_len: data.len(),
            });
        }
        Ok(Tensor {
            buf: Arc::new(Buf::new(data)),
            shape: shape.to_vec(),
        })
    }

    /// Infallible constructor for call sites where `data.len()` equals the
    /// product of `shape` by construction (fills, generators, element-wise
    /// maps). Routes through the same [`Buf`] accounting as
    /// [`Tensor::from_vec`]; the invariant is checked in debug builds only.
    fn from_parts(data: Vec<f32>, shape: Vec<usize>) -> Self {
        debug_assert_eq!(shape.iter().product::<usize>(), data.len());
        Tensor {
            buf: Arc::new(Buf::new(data)),
            shape,
        }
    }

    /// Wraps an already-accounted [`storage::Buffer`](crate::storage::Buffer)
    /// (e.g. one acquired from a [`BufferPool`](crate::storage::BufferPool))
    /// without re-registering it; the invariant that `shape` matches the
    /// buffer length is the caller's and is checked in debug builds only.
    pub(crate) fn from_buffer_unchecked(buf: Buf, shape: Vec<usize>) -> Self {
        debug_assert_eq!(shape.iter().product::<usize>(), buf.len());
        Tensor {
            buf: Arc::new(buf),
            shape,
        }
    }

    /// Recovers the underlying buffer if this tensor is its sole owner
    /// (pool reclamation); a shared buffer stays with its other owners.
    pub(crate) fn try_into_buffer(self) -> Option<Buf> {
        Arc::try_unwrap(self.buf).ok()
    }

    /// Deserializes a tensor from its JSON form (see [`ToJson`] impl),
    /// routing through [`Tensor::from_vec`] so the buffer participates in
    /// the allocation accounting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPayload`] for a malformed tree and
    /// [`TensorError::ShapeDataMismatch`] if data and shape disagree.
    pub fn from_json(value: &Json) -> Result<Self> {
        let malformed = |reason: &str| TensorError::InvalidPayload {
            reason: reason.to_string(),
        };
        let data = value
            .get("data")
            .and_then(Json::as_arr)
            .ok_or_else(|| malformed("missing `data` array"))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .map(cast::f64_to_f32)
                    .ok_or_else(|| malformed("non-numeric entry in `data`"))
            })
            .collect::<Result<Vec<f32>>>()?;
        let shape = value
            .get("shape")
            .and_then(Json::as_arr)
            .ok_or_else(|| malformed("missing `shape` array"))?
            .iter()
            .map(|v| v.as_usize().ok_or_else(|| malformed("bad `shape` entry")))
            .collect::<Result<Vec<usize>>>()?;
        Tensor::from_vec(data, &shape)
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor::from_parts(data.to_vec(), vec![data.len()])
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Tensor::from_parts(vec![value; len], shape.to_vec())
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor with the same shape as `other`, filled with zeros.
    pub fn zeros_like(other: &Tensor) -> Self {
        Tensor::zeros(other.shape())
    }

    /// Zeroes the tensor without ever copying its old contents: writes in
    /// place when the buffer is uniquely owned, and installs a fresh zero
    /// buffer when it is shared (the old data is about to be discarded, so a
    /// copy-on-write materialization would be wasted work — and would count
    /// as a buffer copy it doesn't deserve).
    pub fn zero_fill(&mut self) {
        match Arc::get_mut(&mut self.buf) {
            Some(buf) => buf.data.fill(0.0),
            None => *self = Tensor::zeros(&self.shape),
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        let d = t.data_mut();
        for i in 0..n {
            d[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let len = shape.iter().product();
        let data = (0..len).map(&mut f).collect();
        Tensor::from_parts(data, shape.to_vec())
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.buf.data.len()
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.buf.data.is_empty()
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.buf.data
    }

    /// Mutable access to the buffer: the single COW mutation point. A
    /// uniquely-held buffer is handed out as-is; a shared one is first
    /// materialized into a private copy (`Buf::clone` records the
    /// allocation).
    fn data_mut(&mut self) -> &mut Vec<f32> {
        &mut Arc::make_mut(&mut self.buf).data
    }

    /// Mutable view of the underlying row-major buffer (copies first if the
    /// buffer is shared with another tensor).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data_mut()
    }

    /// Consumes the tensor, returning the underlying buffer. A
    /// uniquely-held buffer moves out (and leaves the alloc ledgers, since
    /// the caller now owns untracked memory); a shared one is copied.
    pub fn into_vec(self) -> Vec<f32> {
        match Arc::try_unwrap(self.buf) {
            Ok(mut buf) => {
                // Take the vec so `Buf::drop` records a zero-byte dealloc;
                // account for the real size here.
                alloc::record_dealloc((buf.data.len() * 4) as u64);
                std::mem::take(&mut buf.data)
            }
            Err(shared) => {
                profile::record_buffer_copy((shared.data.len() * 4) as u64);
                shared.data.clone()
            }
        }
    }

    /// Number of rows of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] if the tensor is not rank-2.
    pub fn nrows(&self) -> Result<usize> {
        self.expect_matrix("nrows").map(|(r, _)| r)
    }

    /// Number of columns of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] if the tensor is not rank-2.
    pub fn ncols(&self) -> Result<usize> {
        self.expect_matrix("ncols").map(|(_, c)| c)
    }

    fn expect_matrix(&self, op: &'static str) -> Result<(usize, usize)> {
        match self.shape.as_slice() {
            [r, c] => Ok((*r, *c)),
            _ => Err(TensorError::NotAMatrix {
                shape: self.shape.clone(),
                op,
            }),
        }
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `index` has the wrong rank
    /// or any coordinate exceeds its dimension.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.buf.data[self.flat_index(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `index` is invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.flat_index(index)?;
        self.data_mut()[flat] = value;
        Ok(())
    }

    fn flat_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.shape.len()
            || index.iter().zip(&self.shape).any(|(i, d)| i >= d)
        {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            });
        }
        let mut flat = 0;
        for (i, d) in index.iter().zip(&self.shape) {
            flat = flat * d + i;
        }
        Ok(flat)
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor sharing this tensor's buffer under a new shape
    /// (O(1): no elements are copied; a later write to either tensor
    /// materializes its own buffer).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        if shape.iter().product::<usize>() != self.buf.data.len() {
            return Err(TensorError::InvalidReshape {
                from: self.shape.clone(),
                to: shape.to_vec(),
            });
        }
        profile::record_buffer_share();
        Ok(Tensor {
            buf: Arc::clone(&self.buf),
            shape: shape.to_vec(),
        })
    }

    /// Flattens to rank 1 (O(1): shares the buffer).
    pub fn flatten(&self) -> Tensor {
        profile::record_buffer_share();
        Tensor {
            buf: Arc::clone(&self.buf),
            shape: vec![self.buf.data.len()],
        }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] if the tensor is not rank-2.
    pub fn transpose(&self) -> Result<Tensor> {
        let (r, c) = self.expect_matrix("transpose")?;
        let mut out = Tensor::zeros(&[c, r]);
        let src = self.buf.data.as_slice();
        let dst = out.data_mut();
        for i in 0..r {
            for j in 0..c {
                dst[j * r + i] = src[i * c + j];
            }
        }
        Ok(out)
    }

    /// Copies rows `[start, end)` of a rank-2 tensor into a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non-matrices and
    /// [`TensorError::IndexOutOfBounds`] if the range is invalid.
    pub fn rows(&self, start: usize, end: usize) -> Result<Tensor> {
        let (r, c) = self.expect_matrix("rows")?;
        if start > end || end > r {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![start, end],
                shape: self.shape.clone(),
            });
        }
        Tensor::from_vec(self.buf.data[start * c..end * c].to_vec(), &[end - start, c])
    }

    /// Copies a single row of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::rows`].
    pub fn row(&self, i: usize) -> Result<Tensor> {
        let r = self.rows(i, i + 1)?;
        Ok(r.flatten())
    }

    /// Gathers the given rows of a rank-2 tensor into a new matrix, in order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non-matrices and
    /// [`TensorError::IndexOutOfBounds`] if any row index is invalid.
    pub fn gather_rows(&self, indices: &[usize]) -> Result<Tensor> {
        let (r, c) = self.expect_matrix("gather_rows")?;
        let mut data = Vec::with_capacity(indices.len() * c);
        for &i in indices {
            if i >= r {
                return Err(TensorError::IndexOutOfBounds {
                    index: vec![i],
                    shape: self.shape.clone(),
                });
            }
            data.extend_from_slice(&self.buf.data[i * c..(i + 1) * c]);
        }
        Tensor::from_vec(data, &[indices.len(), c])
    }

    /// Vertically stacks rank-2 tensors with equal column counts.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty input list,
    /// [`TensorError::NotAMatrix`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] on differing column counts.
    pub fn vstack(tensors: &[&Tensor]) -> Result<Tensor> {
        let first = tensors.first().ok_or(TensorError::Empty { op: "vstack" })?;
        let (_, c) = first.expect_matrix("vstack")?;
        let mut rows = 0;
        let mut data = Vec::new();
        for t in tensors {
            let (r, tc) = t.expect_matrix("vstack")?;
            if tc != c {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape.clone(),
                    rhs: t.shape.clone(),
                    op: "vstack",
                });
            }
            rows += r;
            data.extend_from_slice(&t.buf.data);
        }
        Tensor::from_vec(data, &[rows, c])
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    fn zip_check(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op,
            });
        }
        Ok(())
    }

    /// Parallel elementwise combine used by the fixed arithmetic ops.
    /// Per-element results are independent, so partitioning cannot change
    /// them; `f` is a plain function pointer (capture-free, `Sync`).
    fn binary_elementwise(
        &self,
        other: &Tensor,
        op: &'static str,
        f: fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        self.zip_check(other, op)?;
        let mut out = Tensor::zeros(&self.shape);
        let a = self.buf.data.as_slice();
        let b = other.buf.data.as_slice();
        par::for_each_part_mut(out.data_mut(), 1, PAR_MIN_ELEMS, |offset, part| {
            let a_part = &a[offset..offset + part.len()];
            let b_part = &b[offset..offset + part.len()];
            for ((o, &x), &y) in part.iter_mut().zip(a_part).zip(b_part) {
                *o = f(x, y);
            }
        });
        Ok(out)
    }

    /// Parallel elementwise transform into a fresh tensor.
    fn unary_elementwise(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = Tensor::zeros(&self.shape);
        let a = self.buf.data.as_slice();
        par::for_each_part_mut(out.data_mut(), 1, PAR_MIN_ELEMS, |offset, part| {
            let a_part = &a[offset..offset + part.len()];
            for (o, &x) in part.iter_mut().zip(a_part) {
                *o = f(x);
            }
        });
        out
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.binary_elementwise(other, "add", |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.binary_elementwise(other, "sub", |a, b| a - b)
    }

    /// Elementwise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.binary_elementwise(other, "mul", |a, b| a * b)
    }

    /// Elementwise quotient.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.binary_elementwise(other, "div", |a, b| a / b)
    }

    /// Applies `f` to corresponding elements of `self` and `other`.
    ///
    /// Runs serially: `f` is an arbitrary (possibly non-`Sync`) closure.
    /// The fixed arithmetic ops ([`Tensor::add`] etc.) take the parallel
    /// path instead.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_with(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        self.zip_check(other, op)?;
        let data = self
            .buf
            .data
            .iter()
            .zip(&other.buf.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, &self.shape)
    }

    /// In-place elementwise sum: `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.zip_check(other, "add_assign")?;
        let b = other.buf.data.as_slice();
        par::for_each_part_mut(self.data_mut(), 1, PAR_MIN_ELEMS, |offset, part| {
            let b_part = &b[offset..offset + part.len()];
            for (a, &bv) in part.iter_mut().zip(b_part) {
                *a += bv;
            }
        });
        Ok(())
    }

    /// In-place scaled sum: `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn scaled_add_assign(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.zip_check(other, "scaled_add_assign")?;
        let b = other.buf.data.as_slice();
        par::for_each_part_mut(self.data_mut(), 1, PAR_MIN_ELEMS, |offset, part| {
            let b_part = &b[offset..offset + part.len()];
            for (a, &bv) in part.iter_mut().zip(b_part) {
                *a += alpha * bv;
            }
        });
        Ok(())
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_parts(
            self.buf.data.iter().map(|&x| f(x)).collect(),
            self.shape.clone(),
        )
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.unary_elementwise(move |x| x + s)
    }

    /// Multiplies every element by `s`.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.unary_elementwise(move |x| x * s)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        par::for_each_part_mut(self.data_mut(), 1, PAR_MIN_ELEMS, |_, part| {
            for x in part.iter_mut() {
                *x *= s;
            }
        });
    }

    /// Adds a rank-1 bias to every row of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] if `self` is not rank-2 or
    /// [`TensorError::ShapeMismatch`] if `bias.len()` differs from the column
    /// count.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor> {
        let (_, c) = self.expect_matrix("add_row_broadcast")?;
        if bias.shape != [c] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: bias.shape.clone(),
                op: "add_row_broadcast",
            });
        }
        sanitize::check_finite("add_row_broadcast", "input", self);
        sanitize::check_finite("add_row_broadcast", "bias", bias);
        let mut out = self.clone();
        if c > 0 {
            let bias = bias.buf.data.as_slice();
            let min_rows = (PAR_MIN_ELEMS / c.max(1)).max(1);
            par::for_each_part_mut(out.data_mut(), c, min_rows, |_, rows| {
                for row in rows.chunks_exact_mut(c) {
                    for (o, &bv) in row.iter_mut().zip(bias) {
                        *o += bv;
                    }
                }
            });
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product of two rank-2 tensors.
    ///
    /// Register-blocked FMA microkernel (see [`crate::kernels`]) behind a
    /// driver that parallelizes over output-row ranges on the [`par`] pool;
    /// every output element is one serial ascending-`p` `mul_add` chain, so
    /// results are bit-identical for any thread count and partition (see
    /// [`par`] module docs).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = self.expect_matrix("matmul")?;
        let (k2, n) = other.expect_matrix("matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op: "matmul",
            });
        }
        sanitize::check_finite("matmul", "lhs", self);
        sanitize::check_finite("matmul", "rhs", other);
        crate::profile::record_matmul(m, k, n);
        let mut out = Tensor::zeros(&[m, n]);
        if m > 0 && n > 0 {
            let a = self.buf.data.as_slice();
            let b = other.buf.data.as_slice();
            par::for_each_part_mut(out.data_mut(), n, min_rows_for(k, n), |offset, rows| {
                axpy_row_block(rows, offset / n, a, k, 1, b, k, n);
            });
        }
        sanitize::check_finite("matmul", "output", &out);
        Ok(out)
    }

    /// `self * otherᵀ` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] if the column counts differ.
    pub fn matmul_t(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k) = self.expect_matrix("matmul_t")?;
        let (n, k2) = other.expect_matrix("matmul_t")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op: "matmul_t",
            });
        }
        sanitize::check_finite("matmul_t", "lhs", self);
        sanitize::check_finite("matmul_t", "rhs", other);
        crate::profile::record_matmul(m, k, n);
        let mut out = Tensor::zeros(&[m, n]);
        if m > 0 && n > 0 {
            let a = self.buf.data.as_slice();
            let b = other.buf.data.as_slice();
            par::for_each_part_mut(out.data_mut(), n, min_rows_for(k, n), |offset, rows| {
                dot_row_block(rows, offset / n, a, b, k, n);
            });
        }
        sanitize::check_finite("matmul_t", "output", &out);
        Ok(out)
    }

    /// `selfᵀ * other` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] for non-matrices and
    /// [`TensorError::ShapeMismatch`] if the row counts differ.
    pub fn t_matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (k, m) = self.expect_matrix("t_matmul")?;
        let (k2, n) = other.expect_matrix("t_matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op: "t_matmul",
            });
        }
        sanitize::check_finite("t_matmul", "lhs", self);
        sanitize::check_finite("t_matmul", "rhs", other);
        crate::profile::record_matmul(m, k, n);
        let mut out = Tensor::zeros(&[m, n]);
        if m > 0 && n > 0 {
            let a = self.buf.data.as_slice();
            let b = other.buf.data.as_slice();
            // `self` is `[k, m]`, so the coefficient for output row `i` at
            // reduction step `p` sits at `a[p * m + i]` — same axpy kernel
            // as `matmul`, with the stride pair swapped.
            par::for_each_part_mut(out.data_mut(), n, min_rows_for(k, n), |offset, rows| {
                axpy_row_block(rows, offset / n, a, 1, m, b, k, n);
            });
        }
        sanitize::check_finite("t_matmul", "output", &out);
        Ok(out)
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if element counts differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.buf.data.len() != other.buf.data.len() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op: "dot",
            });
        }
        Ok(par::chunked_dot(&self.buf.data, &other.buf.data))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    ///
    /// Uses the fixed-chunk association order of
    /// [`par::chunked_sum`] — deterministic for any thread count.
    pub fn sum(&self) -> f32 {
        par::chunked_sum(&self.buf.data)
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.buf.data.is_empty() {
            0.0
        } else {
            self.sum() / cast::len_to_f32(self.buf.data.len())
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn max(&self) -> Result<f32> {
        self.buf
            .data
            .iter()
            .copied()
            .fold(None, |m: Option<f32>, x| Some(m.map_or(x, |m| m.max(x))))
            .ok_or(TensorError::Empty { op: "max" })
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty tensor.
    pub fn min(&self) -> Result<f32> {
        self.buf
            .data
            .iter()
            .copied()
            .fold(None, |m: Option<f32>, x| Some(m.map_or(x, |m| m.min(x))))
            .ok_or(TensorError::Empty { op: "min" })
    }

    /// Euclidean (L2) norm of the flattened tensor.
    ///
    /// Accumulates in `f64` with the fixed-chunk association order of
    /// [`par::chunked_sumsq_f64`].
    pub fn norm_l2(&self) -> f32 {
        cast::f64_to_f32(par::chunked_sumsq_f64(&self.buf.data).sqrt())
    }

    /// Column sums of a rank-2 tensor (shape `[ncols]`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] if the tensor is not rank-2.
    pub fn sum_rows(&self) -> Result<Tensor> {
        let (r, c) = self.expect_matrix("sum_rows")?;
        let mut out = Tensor::zeros(&[c]);
        let src = self.buf.data.as_slice();
        let dst = out.data_mut();
        for i in 0..r {
            for j in 0..c {
                dst[j] += src[i * c + j];
            }
        }
        Ok(out)
    }

    /// Index of the maximum element of each row of a rank-2 tensor.
    ///
    /// Ties resolve to the lowest index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NotAMatrix`] if the tensor is not rank-2.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        let (r, c) = self.expect_matrix("argmax_rows")?;
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            let row = &self.buf.data[i * c..(i + 1) * c];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Comparison helpers
    // ------------------------------------------------------------------

    /// `true` if both tensors have the same shape and all elements differ by
    /// at most `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .buf
                .data
                .iter()
                .zip(&other.buf.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Clone for Tensor {
    /// O(1): bumps the buffer refcount. No memory is duplicated (and none
    /// is recorded with the alloc ledgers) until one of the sharing tensors
    /// is written, at which point `Buf::clone` materializes — and records —
    /// a private copy for the writer.
    fn clone(&self) -> Self {
        profile::record_buffer_share();
        Tensor {
            buf: Arc::clone(&self.buf),
            shape: self.shape.clone(),
        }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.buf.data == other.buf.data
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        let data = &self.buf.data;
        if data.len() <= 8 {
            write!(f, " {:?}", data)
        } else {
            write!(
                f,
                " [{}, {}, ... , {}]",
                data[0],
                data[1],
                data[data.len() - 1]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_shape() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::ShapeDataMismatch { .. })
        ));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Tensor::from_fn(&[3, 4], |i| i as f32);
        let b = Tensor::from_fn(&[5, 4], |i| (i as f32).sin());
        let direct = a.matmul_t(&b).unwrap();
        let via_transpose = a.matmul(&b.transpose().unwrap()).unwrap();
        assert!(direct.approx_eq(&via_transpose, 1e-5));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Tensor::from_fn(&[4, 3], |i| (i as f32).cos());
        let b = Tensor::from_fn(&[4, 5], |i| i as f32 * 0.5);
        let direct = a.t_matmul(&b).unwrap();
        let via_transpose = a.transpose().unwrap().matmul(&b).unwrap();
        assert!(direct.approx_eq(&via_transpose, 1e-4));
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_fn(&[3, 5], |i| i as f32);
        assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn scaled_add_assign_is_axpy() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 4.0]);
        a.scaled_add_assign(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_each_row() {
        let x = Tensor::from_vec(vec![0.0; 6], &[2, 3]).unwrap();
        let b = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let y = x.add_row_broadcast(&b).unwrap();
        assert_eq!(y.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_slice(&[3.0, -1.0, 2.0]);
        assert_eq!(a.sum(), 4.0);
        assert!((a.mean() - 4.0 / 3.0).abs() < 1e-6);
        assert_eq!(a.max().unwrap(), 3.0);
        assert_eq!(a.min().unwrap(), -1.0);
        assert!((a.norm_l2() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn empty_max_errors() {
        let a = Tensor::zeros(&[0]);
        assert!(matches!(a.max(), Err(TensorError::Empty { op: "max" })));
    }

    #[test]
    fn sum_rows_sums_columns() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(a.sum_rows().unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn argmax_rows_ties_resolve_low() {
        let a = Tensor::from_vec(vec![1.0, 1.0, 0.0, 5.0], &[2, 2]).unwrap();
        assert_eq!(a.argmax_rows().unwrap(), vec![0, 1]);
    }

    #[test]
    fn rows_and_row_slicing() {
        let a = Tensor::from_fn(&[4, 2], |i| i as f32);
        let mid = a.rows(1, 3).unwrap();
        assert_eq!(mid.shape(), &[2, 2]);
        assert_eq!(mid.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.row(3).unwrap().as_slice(), &[6.0, 7.0]);
        assert!(a.rows(3, 5).is_err());
    }

    #[test]
    fn gather_rows_reorders() {
        let a = Tensor::from_fn(&[3, 2], |i| i as f32);
        let g = a.gather_rows(&[2, 0]).unwrap();
        assert_eq!(g.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
        assert!(a.gather_rows(&[3]).is_err());
    }

    #[test]
    fn vstack_concatenates() {
        let a = Tensor::from_fn(&[1, 2], |i| i as f32);
        let b = Tensor::from_fn(&[2, 2], |i| 10.0 + i as f32);
        let s = Tensor::vstack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), &[3, 2]);
        assert_eq!(s.as_slice(), &[0.0, 1.0, 10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn vstack_rejects_mismatched_columns() {
        let a = Tensor::zeros(&[1, 2]);
        let b = Tensor::zeros(&[1, 3]);
        assert!(Tensor::vstack(&[&a, &b]).is_err());
    }

    #[test]
    fn reshape_roundtrip() {
        let a = Tensor::from_fn(&[2, 6], |i| i as f32);
        let b = a.reshape(&[3, 4]).unwrap();
        assert_eq!(b.shape(), &[3, 4]);
        assert_eq!(b.as_slice(), a.as_slice());
        assert!(a.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn get_set_multi_index() {
        let mut a = Tensor::zeros(&[2, 3, 4]);
        a.set(&[1, 2, 3], 7.0).unwrap();
        assert_eq!(a.get(&[1, 2, 3]).unwrap(), 7.0);
        assert_eq!(a.as_slice()[23], 7.0);
        assert!(a.get(&[2, 0, 0]).is_err());
        assert!(a.get(&[0, 0]).is_err());
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn json_roundtrip_preserves_bits_and_shape() {
        let t = Tensor::from_vec(vec![0.1, -2.5, 3.0e-20, 7.0], &[2, 2]).unwrap();
        let text = t.to_json().dump();
        let back = Tensor::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn from_json_rejects_malformed_payloads() {
        for bad in [
            "{\"shape\": [2]}",
            "{\"data\": [1, 2], \"shape\": [3]}",
            "{\"data\": [\"x\"], \"shape\": [1]}",
            "[1, 2, 3]",
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(Tensor::from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn display_never_empty() {
        assert!(!format!("{}", Tensor::zeros(&[0])).is_empty());
        assert!(!format!("{}", Tensor::zeros(&[100])).is_empty());
    }
}

//! Process-wide kernel counters for the observability layer.
//!
//! The hot kernels in this crate — the three matmul variants, the
//! `im2col`/`col2im` lowerings and the [`par`](crate::par) pool — bump a
//! small set of relaxed atomics here. `dinar-telemetry` bridges snapshots of
//! these counters into its metrics registry; keeping the raw counters in
//! this crate avoids a dependency cycle (telemetry depends on tensor for
//! JSON, not the other way around).
//!
//! # Determinism
//!
//! The kernel counters (`matmul_*`, `im2col_*`, `col2im_*`) count *logical*
//! work: one increment per kernel call on the calling thread, with values
//! derived from tensor shapes alone. They are therefore identical for any
//! pool width. The pool counters (`pool_*`) count *scheduling* — how many
//! regions actually fanned out and how wide — and legitimately vary with
//! `DINAR_THREADS`; consumers must treat them as volatile (the telemetry
//! bridge tags them so).
//!
//! Counters are process-global and monotone; callers that want per-phase
//! numbers take a [`snapshot`] before and after and diff with
//! [`KernelSnapshot::delta_since`].

use std::sync::atomic::{AtomicU64, Ordering};

static MATMUL_CALLS: AtomicU64 = AtomicU64::new(0);
static MATMUL_FLOPS: AtomicU64 = AtomicU64::new(0);
static IM2COL_CALLS: AtomicU64 = AtomicU64::new(0);
static IM2COL_BYTES: AtomicU64 = AtomicU64::new(0);
static COL2IM_CALLS: AtomicU64 = AtomicU64::new(0);
static COL2IM_BYTES: AtomicU64 = AtomicU64::new(0);
static POOL_REGIONS: AtomicU64 = AtomicU64::new(0);
static POOL_TASKS: AtomicU64 = AtomicU64::new(0);
static POOL_MAX_WIDTH: AtomicU64 = AtomicU64::new(0);
static PARAM_COPY_CALLS: AtomicU64 = AtomicU64::new(0);
static PARAM_COPY_BYTES: AtomicU64 = AtomicU64::new(0);
static PARAM_SHARE_CALLS: AtomicU64 = AtomicU64::new(0);
static RNG_SAMPLES: AtomicU64 = AtomicU64::new(0);

/// Record a matmul-family call over an `[m, k] x [k, n]` problem
/// (`2 * m * k * n` flops, the standard multiply-add count).
pub(crate) fn record_matmul(m: usize, k: usize, n: usize) {
    MATMUL_CALLS.fetch_add(1, Ordering::Relaxed);
    let flops = 2u64
        .saturating_mul(m as u64)
        .saturating_mul(k as u64)
        .saturating_mul(n as u64);
    MATMUL_FLOPS.fetch_add(flops, Ordering::Relaxed);
}

/// Record an `im2col` lowering that materialized `bytes` of patch rows.
pub(crate) fn record_im2col(bytes: u64) {
    IM2COL_CALLS.fetch_add(1, Ordering::Relaxed);
    IM2COL_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Record a `col2im` fold that materialized `bytes` of output.
pub(crate) fn record_col2im(bytes: u64) {
    COL2IM_CALLS.fetch_add(1, Ordering::Relaxed);
    COL2IM_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Record a pool region that actually fanned out to `tasks` scoped threads.
pub(crate) fn record_pool_region(tasks: u64) {
    POOL_REGIONS.fetch_add(1, Ordering::Relaxed);
    POOL_TASKS.fetch_add(tasks, Ordering::Relaxed);
    POOL_MAX_WIDTH.fetch_max(tasks, Ordering::Relaxed);
}

/// Record a deep copy of a tensor buffer (`bytes` actually duplicated).
pub(crate) fn record_buffer_copy(bytes: u64) {
    PARAM_COPY_CALLS.fetch_add(1, Ordering::Relaxed);
    PARAM_COPY_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Record an O(1) share of a tensor buffer (a clone that duplicated nothing).
pub(crate) fn record_buffer_share() {
    PARAM_SHARE_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// Record `n` bulk RNG samples (one per element filled). Counted per
/// logical fill on the calling thread from the request length alone, so —
/// like the other kernel counters — the value is pool-width independent;
/// scalar draws are deliberately not counted (they are not kernel work, and
/// instrumenting them would put an atomic on a one-sample path).
pub(crate) fn record_rng_samples(n: usize) {
    RNG_SAMPLES.fetch_add(n as u64, Ordering::Relaxed);
}

/// A point-in-time copy of the parameter-plane counters.
///
/// Kept separate from [`KernelSnapshot`] so the telemetry bridge (and its
/// golden snapshot) is unaffected: these counters serve the `bench_params`
/// copy-traffic artifact, not the metrics registry. Copies are counted per
/// logical buffer duplication on the duplicating thread, so the numbers are
/// pool-width independent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParamSnapshot {
    /// Tensor buffers deep-copied (clones that duplicated memory).
    pub copy_calls: u64,
    /// Bytes those copies duplicated.
    pub copy_bytes: u64,
    /// Tensor buffers shared by refcount bump (clones that duplicated
    /// nothing).
    pub share_calls: u64,
}

impl ParamSnapshot {
    /// Counter increments between `earlier` and `self` (saturating).
    pub fn delta_since(&self, earlier: &ParamSnapshot) -> ParamSnapshot {
        ParamSnapshot {
            copy_calls: self.copy_calls.saturating_sub(earlier.copy_calls),
            copy_bytes: self.copy_bytes.saturating_sub(earlier.copy_bytes),
            share_calls: self.share_calls.saturating_sub(earlier.share_calls),
        }
    }
}

/// Reads the parameter-plane counters at once.
pub fn param_snapshot() -> ParamSnapshot {
    ParamSnapshot {
        copy_calls: PARAM_COPY_CALLS.load(Ordering::Relaxed),
        copy_bytes: PARAM_COPY_BYTES.load(Ordering::Relaxed),
        share_calls: PARAM_SHARE_CALLS.load(Ordering::Relaxed),
    }
}

/// A point-in-time copy of every kernel counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelSnapshot {
    /// Calls to `matmul` / `matmul_t` / `t_matmul`.
    pub matmul_calls: u64,
    /// Total `2 * m * k * n` flops across those calls.
    pub matmul_flops: u64,
    /// Calls to `im2col2d` / `im2col1d`.
    pub im2col_calls: u64,
    /// Bytes of patch rows those calls materialized.
    pub im2col_bytes: u64,
    /// Calls to `col2im2d` / `col2im1d`.
    pub col2im_calls: u64,
    /// Bytes of folded output those calls materialized.
    pub col2im_bytes: u64,
    /// Parallel regions that fanned out (width > 1). **Volatile**: varies
    /// with the pool width.
    pub pool_regions: u64,
    /// Scoped threads spawned across those regions. **Volatile**.
    pub pool_tasks: u64,
    /// Widest single fan-out observed. **Volatile**.
    pub pool_max_width: u64,
    /// Bulk RNG samples drawn (`fill_uniform` / `fill_normal` /
    /// `axpy_normal` elements) — the per-round noise volume.
    pub rng_samples: u64,
}

impl KernelSnapshot {
    /// Counter increments between `earlier` and `self` (fields saturate at
    /// zero if `earlier` was taken after a [`reset`]).
    pub fn delta_since(&self, earlier: &KernelSnapshot) -> KernelSnapshot {
        KernelSnapshot {
            matmul_calls: self.matmul_calls.saturating_sub(earlier.matmul_calls),
            matmul_flops: self.matmul_flops.saturating_sub(earlier.matmul_flops),
            im2col_calls: self.im2col_calls.saturating_sub(earlier.im2col_calls),
            im2col_bytes: self.im2col_bytes.saturating_sub(earlier.im2col_bytes),
            col2im_calls: self.col2im_calls.saturating_sub(earlier.col2im_calls),
            col2im_bytes: self.col2im_bytes.saturating_sub(earlier.col2im_bytes),
            pool_regions: self.pool_regions.saturating_sub(earlier.pool_regions),
            pool_tasks: self.pool_tasks.saturating_sub(earlier.pool_tasks),
            // A high-water mark, not a sum: the delta keeps the later value.
            pool_max_width: self.pool_max_width,
            rng_samples: self.rng_samples.saturating_sub(earlier.rng_samples),
        }
    }
}

/// Reads every counter at once.
pub fn snapshot() -> KernelSnapshot {
    KernelSnapshot {
        matmul_calls: MATMUL_CALLS.load(Ordering::Relaxed),
        matmul_flops: MATMUL_FLOPS.load(Ordering::Relaxed),
        im2col_calls: IM2COL_CALLS.load(Ordering::Relaxed),
        im2col_bytes: IM2COL_BYTES.load(Ordering::Relaxed),
        col2im_calls: COL2IM_CALLS.load(Ordering::Relaxed),
        col2im_bytes: COL2IM_BYTES.load(Ordering::Relaxed),
        pool_regions: POOL_REGIONS.load(Ordering::Relaxed),
        pool_tasks: POOL_TASKS.load(Ordering::Relaxed),
        pool_max_width: POOL_MAX_WIDTH.load(Ordering::Relaxed),
        rng_samples: RNG_SAMPLES.load(Ordering::Relaxed),
    }
}

/// Zeroes every counter. Intended for single-threaded harness setup; calls
/// racing with live kernels lose increments, which only skews profiles.
pub fn reset() {
    MATMUL_CALLS.store(0, Ordering::Relaxed);
    MATMUL_FLOPS.store(0, Ordering::Relaxed);
    IM2COL_CALLS.store(0, Ordering::Relaxed);
    IM2COL_BYTES.store(0, Ordering::Relaxed);
    COL2IM_CALLS.store(0, Ordering::Relaxed);
    COL2IM_BYTES.store(0, Ordering::Relaxed);
    POOL_REGIONS.store(0, Ordering::Relaxed);
    POOL_TASKS.store(0, Ordering::Relaxed);
    POOL_MAX_WIDTH.store(0, Ordering::Relaxed);
    PARAM_COPY_CALLS.store(0, Ordering::Relaxed);
    PARAM_COPY_BYTES.store(0, Ordering::Relaxed);
    PARAM_SHARE_CALLS.store(0, Ordering::Relaxed);
    RNG_SAMPLES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn matmul_counts_calls_and_flops() {
        let before = snapshot();
        let a = Tensor::ones(&[4, 3]);
        let b = Tensor::ones(&[3, 5]);
        a.matmul(&b).unwrap();
        let d = snapshot().delta_since(&before);
        assert!(d.matmul_calls >= 1);
        // Concurrent tests may add their own flops; ours are at least 2*4*3*5.
        assert!(d.matmul_flops >= 120);
    }

    #[test]
    fn transposed_variants_count_too() {
        let before = snapshot();
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::ones(&[4, 3]);
        a.matmul_t(&b).unwrap();
        let c = Tensor::ones(&[2, 5]);
        a.t_matmul(&c).unwrap();
        let d = snapshot().delta_since(&before);
        assert!(d.matmul_calls >= 2);
    }

    #[test]
    fn im2col_counts_bytes() {
        use crate::conv::{im2col2d, Conv2dGeom};
        let geom = Conv2dGeom {
            channels: 1,
            height: 4,
            width: 4,
            kernel_h: 2,
            kernel_w: 2,
            stride: 1,
            padding: 0,
        };
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let before = snapshot();
        let cols = im2col2d(&x, &geom).unwrap();
        let d = snapshot().delta_since(&before);
        assert!(d.im2col_calls >= 1);
        assert!(d.im2col_bytes >= cols.len() as u64 * 4);
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let later = KernelSnapshot::default();
        let earlier = KernelSnapshot {
            matmul_calls: 10,
            ..KernelSnapshot::default()
        };
        assert_eq!(later.delta_since(&earlier).matmul_calls, 0);
    }
}

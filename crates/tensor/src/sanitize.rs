//! Runtime numeric sanitizers (the `sanitize` cargo feature).
//!
//! Privacy-mechanism implementations fail *silently*: a NaN-poisoned
//! gradient propagates through FedAvg, the obfuscation layer and the attack
//! evaluation without a single error, and the only symptom is a nonsensical
//! AUC three layers downstream. With `--features sanitize`, the tensor hot
//! paths (`matmul` family, row broadcast, `im2col`/`col2im`) verify that
//! their operands and results are finite and panic **naming the op that
//! produced or first consumed the corruption**, so the failure is pinned to
//! its source instead of its symptom.
//!
//! The checks cost one pass over each operand, so they are compiled out
//! entirely unless the feature is enabled:
//!
//! ```text
//! cargo test -p dinar-tensor -p dinar-nn --features sanitize
//! ```
//!
//! The same feature gates the post-backward gradient checks in `dinar-nn`.

use crate::Tensor;

/// Panics if `t` contains a non-finite element, reporting the op, the
/// operand role and the flat index of the first offender.
///
/// Compiled to nothing without the `sanitize` feature.
#[inline]
pub fn check_finite(op: &str, role: &str, t: &Tensor) {
    #[cfg(feature = "sanitize")]
    {
        if let Some((i, x)) = t
            .as_slice()
            .iter()
            .enumerate()
            .find(|(_, x)| !x.is_finite())
        {
            // lint: allow(L012, the sanitize contract: fail loudly at the op that produced the NaN)
            panic!(
                "sanitize: `{op}` {role} contains non-finite value {x} at flat \
                 index {i} (shape {:?})",
                t.shape()
            );
        }
    }
    #[cfg(not(feature = "sanitize"))]
    {
        let _ = (op, role, t);
    }
}

/// Panics if `values` (a raw buffer belonging to `op`) contains a non-finite
/// element. Used where the hot path works on slices before a `Tensor` is
/// constructed.
#[inline]
pub fn check_finite_slice(op: &str, role: &str, values: &[f32]) {
    #[cfg(feature = "sanitize")]
    {
        if let Some((i, x)) = values.iter().enumerate().find(|(_, x)| !x.is_finite()) {
            // lint: allow(L012, the sanitize contract: fail loudly at the op that produced the NaN)
            panic!(
                "sanitize: `{op}` {role} contains non-finite value {x} at flat index {i}"
            );
        }
    }
    #[cfg(not(feature = "sanitize"))]
    {
        let _ = (op, role, values);
    }
}

/// Panics if an op's declared output shape does not match the tensor it
/// actually produced — the shape-contract check for lowered ops whose output
/// geometry is computed separately from the data (e.g. `im2col`).
///
/// Compiled to nothing without the `sanitize` feature.
#[inline]
pub fn check_shape_contract(op: &str, expected: &[usize], actual: &[usize]) {
    #[cfg(feature = "sanitize")]
    {
        assert!(
            expected == actual,
            "sanitize: `{op}` violated its shape contract: declared {expected:?}, \
             produced {actual:?}"
        );
    }
    #[cfg(not(feature = "sanitize"))]
    {
        let _ = (op, expected, actual);
    }
}

/// `true` when the crate was built with the `sanitize` feature — lets
/// downstream test harnesses assert the sanitizer layer is actually armed.
pub const fn enabled() -> bool {
    cfg!(feature = "sanitize")
}

#[cfg(all(test, feature = "sanitize"))]
mod tests {
    use super::*;

    #[test]
    fn clean_tensors_pass() {
        let t = Tensor::from_slice(&[1.0, -2.0, 0.0]);
        check_finite("matmul", "lhs", &t);
        check_finite_slice("im2col2d", "input", t.as_slice());
        check_shape_contract("im2col2d", &[3], t.shape());
    }

    #[test]
    #[should_panic(expected = "`matmul` lhs contains non-finite")]
    fn nan_operand_names_the_op_and_role() {
        let t = Tensor::from_slice(&[1.0, f32::NAN]);
        check_finite("matmul", "lhs", &t);
    }

    #[test]
    #[should_panic(expected = "shape contract")]
    fn shape_contract_violation_panics() {
        check_shape_contract("col2im2d", &[2, 2], &[4]);
    }
}

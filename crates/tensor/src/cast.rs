//! Checked numeric conversions for the tensor hot paths.
//!
//! Lint rule L004 bans bare `as` casts between floats and integers (and
//! narrowing `as f32`/`as usize` in general) inside the tensor hot paths:
//! a silent `as` can truncate, wrap, or round without any trace, which is
//! exactly the kind of silent numeric corruption the sanitizer layer exists
//! to catch. These helpers make every conversion's contract explicit and
//! verify it under `debug_assertions`, while compiling to the plain cast in
//! release builds.

/// Converts a length/count to `f32` for averaging.
///
/// Exact for values up to 2²⁴; above that the nearest representable float
/// is returned, which is the correct semantic for mean denominators.
#[inline]
pub fn len_to_f32(n: usize) -> f32 {
    n as f32 // lint: allow(L004, the checked-cast helper itself)
}

/// Converts a length/count to `f64` for averaging.
///
/// Exact for values up to 2⁵³, which covers every in-memory length.
#[inline]
pub fn len_to_f64(n: usize) -> f64 {
    n as f64 // lint: allow(L004, the checked-cast helper itself)
}

/// Quantizes a rounded ratio to a saturating signed 8-bit level, the
/// checked narrowing the wire codec's i8 path routes through (lint rule
/// L017 bans bare narrowing casts in codec paths).
///
/// Non-finite inputs map to level 0 — a NaN-poisoned element must not
/// produce an undefined cast.
#[inline]
pub fn f32_to_i8_sat(x: f32) -> i8 {
    if !x.is_finite() {
        return 0;
    }
    let clamped = x.round().clamp(-127.0, 127.0);
    clamped as i8 // lint: allow(L004, clamped to the i8 range just above)
}

/// Explicit precision-narrowing conversion from `f64` to `f32`.
///
/// Verifies under `debug_assertions` that a finite input stays finite
/// (i.e. the value does not overflow `f32`'s range).
#[inline]
pub fn f64_to_f32(x: f64) -> f32 {
    let out = x as f32; // lint: allow(L004, the checked-cast helper itself)
    debug_assert!(
        x.is_finite() == out.is_finite(),
        "f64_to_f32 overflowed: {x}"
    );
    out
}

/// Converts a signed index that has already been bounds-checked to `usize`.
///
/// Verifies under `debug_assertions` that the index is non-negative; in
/// release builds this is the plain cast, keeping the `im2col` inner loops
/// free of branches.
#[inline]
pub fn idx_to_usize(i: isize) -> usize {
    debug_assert!(i >= 0, "idx_to_usize on negative index {i}");
    i as usize // lint: allow(L004, the checked-cast helper itself)
}

/// Converts a non-negative finite `f32` to an index, erroring on anything
/// that would truncate or wrap.
///
/// # Errors
///
/// Returns [`crate::TensorError::InvalidCast`] for negative, non-finite or
/// fractional inputs.
pub fn f32_to_usize(x: f32) -> crate::Result<usize> {
    if !x.is_finite() || x < 0.0 || x.fract() != 0.0 || x > usize::MAX as f64 as f32 {
        return Err(crate::TensorError::InvalidCast {
            value: f64::from(x),
            target: "usize",
        });
    }
    Ok(x as usize) // lint: allow(L004, validated just above)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_conversions_are_exact_in_range() {
        assert_eq!(len_to_f32(0), 0.0);
        assert_eq!(len_to_f32(1 << 24), 16_777_216.0);
    }

    #[test]
    fn f64_narrowing() {
        assert_eq!(f64_to_f32(1.5), 1.5f32);
        assert_eq!(f64_to_f32(0.1) as f64, 0.1f32 as f64);
    }

    #[test]
    fn idx_roundtrip() {
        assert_eq!(idx_to_usize(7), 7);
        assert_eq!(idx_to_usize(0), 0);
    }

    #[test]
    fn i8_saturation_and_non_finite_handling() {
        assert_eq!(f32_to_i8_sat(0.0), 0);
        assert_eq!(f32_to_i8_sat(0.4), 0);
        assert_eq!(f32_to_i8_sat(0.6), 1);
        assert_eq!(f32_to_i8_sat(-126.7), -127);
        assert_eq!(f32_to_i8_sat(127.0), 127);
        assert_eq!(f32_to_i8_sat(1e9), 127);
        assert_eq!(f32_to_i8_sat(-1e9), -127);
        assert_eq!(f32_to_i8_sat(f32::NAN), 0);
        assert_eq!(f32_to_i8_sat(f32::INFINITY), 0);
    }

    #[test]
    fn f32_to_usize_accepts_integers_only() {
        assert_eq!(f32_to_usize(42.0).unwrap(), 42);
        assert!(f32_to_usize(-1.0).is_err());
        assert!(f32_to_usize(1.5).is_err());
        assert!(f32_to_usize(f32::NAN).is_err());
        assert!(f32_to_usize(f32::INFINITY).is_err());
    }
}

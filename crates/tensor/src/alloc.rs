//! Allocation accounting for tensor buffers.
//!
//! The paper's Table 3 reports *GPU memory usage on client side* for every
//! defense mechanism. The overheads measured there stem from extra
//! parameter-sized buffers that a defense allocates (noise tensors, clipping
//! copies, compression residuals, aggregation staging buffers). Running on a
//! CPU, we reproduce that column by counting the bytes held by live [`Tensor`]
//! buffers: every buffer construction registers its size here, and dropping
//! the last owner releases it. Tensor storage is copy-on-write: a clone
//! shares the buffer and registers nothing; the first in-place write of a
//! shared buffer materializes — and registers — a private copy. The ledgers
//! therefore track *materialized* bytes, which is exactly what a defense
//! pays for.
//!
//! Two ledgers are kept:
//!
//! * **Process-global** (atomics): [`live_bytes`] is the total held by live
//!   tensor buffers across all threads; [`peak_bytes`] is its monotone
//!   high-water mark.
//! * **Per-thread** (thread-locals): each thread tracks the live level and
//!   peak of allocations *it* performed. [`MemoryScope`] measures against
//!   this ledger, so concurrent scopes — e.g. one per FL client task on the
//!   [`par`](crate::par) pool — never attribute each other's allocations.
//!   Tensors allocated inside the scope's thread are charged to it even if
//!   another thread later drops them; the per-thread live level is signed
//!   and saturating so cross-thread drops cannot corrupt it.
//!
//! The parallel kernels in this crate construct their output tensors on the
//! calling thread (workers only fill pre-allocated buffers), so a scope
//! wrapped around any tensor op still observes the op's full footprint.
//!
//! [`Tensor`]: crate::Tensor

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes currently held by live tensor buffers (all threads).
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
/// Highest value `LIVE_BYTES` has ever reached.
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Net bytes allocated minus deallocated by this thread. Signed: a
    /// thread that drops buffers it did not allocate goes negative.
    static TASK_LIVE: Cell<i64> = const { Cell::new(0) };
    /// Highest `TASK_LIVE` since the last [`MemoryScope::enter`] on this
    /// thread.
    static TASK_PEAK: Cell<i64> = const { Cell::new(0) };
}

/// Record an allocation of `bytes` tensor-buffer bytes.
///
/// Called by [`Tensor`](crate::Tensor) constructors; user code normally does
/// not need this, but custom buffer types participating in the accounting may
/// call it (paired with [`record_dealloc`]).
pub fn record_alloc(bytes: u64) {
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    TASK_LIVE.with(|l| {
        let task_live = l.get().saturating_add_unsigned(bytes);
        l.set(task_live);
        TASK_PEAK.with(|p| p.set(p.get().max(task_live)));
    });
}

/// Record a deallocation of `bytes` tensor-buffer bytes.
pub fn record_dealloc(bytes: u64) {
    LIVE_BYTES.fetch_sub(bytes, Ordering::Relaxed);
    TASK_LIVE.with(|l| l.set(l.get().saturating_sub_unsigned(bytes)));
}

/// Bytes currently held by live tensor buffers, process-wide.
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Monotone process-wide high-water mark of [`live_bytes`].
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Net bytes this thread has allocated minus deallocated (may be negative
/// if the thread drops buffers allocated elsewhere).
pub fn thread_live_bytes() -> i64 {
    TASK_LIVE.with(Cell::get)
}

/// Measures the peak *additional* tensor memory allocated by the current
/// thread while the scope is alive.
///
/// The scope snapshots this thread's live level on entry and resets the
/// thread-local peak register to it, so the reported value is the
/// high-water mark reached during the scope relative to the level at entry
/// — precisely the "extra buffers" a defense mechanism allocates during a
/// training round. The ledger is per-thread, so scopes running concurrently
/// on different pool workers measure independently; read the result on the
/// same thread that entered the scope.
///
/// Scopes on one thread do not nest: entering a scope resets the peak
/// register that an enclosing scope is also reading.
///
/// # Example
///
/// ```
/// use dinar_tensor::{alloc::MemoryScope, Tensor};
///
/// let scope = MemoryScope::enter();
/// let t = Tensor::zeros(&[1024]); // 4 KiB
/// assert!(scope.peak_extra_bytes() >= 4096);
/// drop(t);
/// ```
#[derive(Debug)]
pub struct MemoryScope {
    baseline: i64,
}

impl MemoryScope {
    /// Start measuring: snapshots the current thread's live level and resets
    /// its peak register to it.
    pub fn enter() -> Self {
        let baseline = TASK_LIVE.with(Cell::get);
        TASK_PEAK.with(|p| p.set(baseline));
        MemoryScope { baseline }
    }

    /// Peak bytes this thread allocated above its level at scope entry.
    ///
    /// Saturates at zero if the thread only deallocated during the scope.
    pub fn peak_extra_bytes(&self) -> u64 {
        let extra = TASK_PEAK.with(Cell::get) - self.baseline;
        u64::try_from(extra).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn tensor_alloc_and_drop_are_tracked() {
        // The global ledger is shared with concurrently running tests, so
        // exact assertions go through the per-thread ledger.
        let thread_before = thread_live_bytes();
        let t = Tensor::zeros(&[256]);
        assert_eq!(thread_live_bytes(), thread_before + 1024);
        assert!(peak_bytes() >= 1024);
        drop(t);
        assert_eq!(thread_live_bytes(), thread_before);
    }

    #[test]
    fn clone_defers_allocation_until_first_write() {
        let t = Tensor::zeros(&[128]);
        let before = thread_live_bytes();
        // Clone is copy-on-write: sharing the buffer allocates nothing.
        let mut c = t.clone();
        assert_eq!(thread_live_bytes(), before);
        // First write materializes the clone's private 512-byte buffer.
        c.as_mut_slice()[0] = 1.0;
        assert_eq!(thread_live_bytes(), before + 512);
        assert_eq!(t.as_slice()[0], 0.0, "reader must not see the write");
        drop(c);
        assert_eq!(thread_live_bytes(), before);
        // Dropping the original releases the buffer the pair was sharing.
        let original = thread_live_bytes();
        drop(t);
        assert_eq!(thread_live_bytes(), original - 512);
    }

    #[test]
    fn scope_reports_peak_extra() {
        let scope = MemoryScope::enter();
        {
            let _a = Tensor::zeros(&[1000]); // 4000 bytes live
            let _b = Tensor::zeros(&[1000]); // 8000 bytes live -> peak
        }
        // Buffers are freed but the peak within the scope remains visible.
        assert!(scope.peak_extra_bytes() >= 8000);
    }

    #[test]
    fn scope_saturates_rather_than_underflows() {
        let t = Tensor::zeros(&[4096]);
        let scope = MemoryScope::enter();
        drop(t);
        // No allocation happened inside the scope; peak_extra must be 0 even
        // though the thread's live level fell below the baseline.
        assert_eq!(scope.peak_extra_bytes(), 0);
    }

    #[test]
    fn concurrent_scopes_do_not_attribute_each_other() {
        // Regression for the old global-peak design, where a scope on one
        // thread absorbed allocations made on another. Two threads allocate
        // wildly different amounts while synchronized at a barrier, so the
        // allocations demonstrably interleave in time.
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let sizes = [100usize, 100_000usize]; // 400 B vs 400 KB
        let handles: Vec<_> = sizes
            .iter()
            .map(|&elems| {
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let scope = MemoryScope::enter();
                    barrier.wait();
                    let t = Tensor::zeros(&[elems]);
                    barrier.wait(); // both allocations are now live
                    drop(t);
                    scope.peak_extra_bytes()
                })
            })
            .collect();
        let measured: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(measured[0], 400, "small task charged for the big one");
        assert_eq!(measured[1], 400_000, "big task mismeasured");
    }

    #[test]
    fn cross_thread_drop_keeps_ledgers_consistent() {
        let alloc_before = thread_live_bytes();
        let t = Tensor::zeros(&[512]); // 2048 bytes, charged to this thread
        assert_eq!(thread_live_bytes(), alloc_before + 2048);
        let dropper_delta = std::thread::spawn(move || {
            let before = thread_live_bytes();
            drop(t);
            thread_live_bytes() - before
        })
        .join()
        .unwrap();
        // The dropping thread's ledger goes negative by the buffer size;
        // the allocating thread's ledger stays charged. The global ledger
        // (shared with concurrent tests) nets the two out.
        assert_eq!(dropper_delta, -2048);
        assert_eq!(thread_live_bytes(), alloc_before + 2048);
    }
}

//! Allocation accounting for tensor buffers.
//!
//! The paper's Table 3 reports *GPU memory usage on client side* for every
//! defense mechanism. The overheads measured there stem from extra
//! parameter-sized buffers that a defense allocates (noise tensors, clipping
//! copies, compression residuals, aggregation staging buffers). Running on a
//! CPU, we reproduce that column by counting the bytes held by live [`Tensor`]
//! buffers: every tensor construction registers its buffer size here, and every
//! drop releases it.
//!
//! Accounting is process-global and lock-free (atomics); a [`MemoryScope`]
//! captures the additional peak reached while it is alive, which is exactly
//! "extra memory used by this defense during one training round".
//!
//! [`Tensor`]: crate::Tensor

use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes currently held by live tensor buffers.
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
/// Highest value `LIVE_BYTES` has ever reached.
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// Record an allocation of `bytes` tensor-buffer bytes.
///
/// Called by [`Tensor`](crate::Tensor) constructors; user code normally does
/// not need this, but custom buffer types participating in the accounting may
/// call it (paired with [`record_dealloc`]).
pub fn record_alloc(bytes: u64) {
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

/// Record a deallocation of `bytes` tensor-buffer bytes.
pub fn record_dealloc(bytes: u64) {
    LIVE_BYTES.fetch_sub(bytes, Ordering::Relaxed);
}

/// Bytes currently held by live tensor buffers.
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Highest number of live tensor-buffer bytes observed so far in the process.
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Measures the peak *additional* tensor memory allocated while the scope is
/// alive.
///
/// The scope resets the global peak to the current live level on entry, so the
/// reported value is the high-water mark reached during the scope relative to
/// the level at entry — precisely the "extra buffers" a defense mechanism
/// allocates during a training round.
///
/// Note: because the peak register is global, interleaving scopes on multiple
/// threads attributes each other's allocations; the benchmark harness runs
/// defense measurements sequentially.
///
/// # Example
///
/// ```
/// use dinar_tensor::{alloc::MemoryScope, Tensor};
///
/// let scope = MemoryScope::enter();
/// let t = Tensor::zeros(&[1024]); // 4 KiB
/// assert!(scope.peak_extra_bytes() >= 4096);
/// drop(t);
/// ```
#[derive(Debug)]
pub struct MemoryScope {
    baseline: u64,
}

impl MemoryScope {
    /// Start measuring: snapshots the current live level and resets the peak
    /// register to it.
    pub fn enter() -> Self {
        let baseline = live_bytes();
        PEAK_BYTES.store(baseline, Ordering::Relaxed);
        MemoryScope { baseline }
    }

    /// Peak bytes allocated above the level at scope entry.
    ///
    /// Saturates at zero if (due to deallocations racing the snapshot) the
    /// peak reads below the baseline.
    pub fn peak_extra_bytes(&self) -> u64 {
        peak_bytes().saturating_sub(self.baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn tensor_alloc_and_drop_are_tracked() {
        let before = live_bytes();
        let t = Tensor::zeros(&[256]);
        assert_eq!(live_bytes(), before + 1024);
        drop(t);
        assert_eq!(live_bytes(), before);
    }

    #[test]
    fn clone_allocates_its_own_buffer() {
        let t = Tensor::zeros(&[128]);
        let before = live_bytes();
        let c = t.clone();
        assert_eq!(live_bytes(), before + 512);
        drop(c);
        assert_eq!(live_bytes(), before);
    }

    #[test]
    fn scope_reports_peak_extra() {
        let scope = MemoryScope::enter();
        {
            let _a = Tensor::zeros(&[1000]); // 4000 bytes live
            let _b = Tensor::zeros(&[1000]); // 8000 bytes live -> peak
        }
        // Buffers are freed but the peak within the scope remains visible.
        assert!(scope.peak_extra_bytes() >= 8000);
    }

    #[test]
    fn scope_saturates_rather_than_underflows() {
        let t = Tensor::zeros(&[4096]);
        let scope = MemoryScope::enter();
        drop(t);
        // No allocation happened inside the scope; peak_extra must be 0 even
        // though live level fell below the baseline.
        assert_eq!(scope.peak_extra_bytes(), 0);
    }
}

//! Deterministic parallel compute layer: a scoped-thread fork-join pool.
//!
//! Every figure in the paper's evaluation is gated on the same hot path —
//! `im2col` + `matmul` inside each client's local epochs — so the kernels in
//! [`crate::Tensor`] and [`crate::conv`] fan work out across OS threads. The
//! workspace builds hermetically (no rayon), so this module provides the
//! minimal std-only substitute: [`std::thread::scope`]-based fork-join over
//! contiguous partitions of an output buffer.
//!
//! # Determinism contract
//!
//! Parallel results are **bit-identical for any thread count**, including 1:
//!
//! * Work is partitioned over *output* ranges, so every output element is
//!   written by exactly one thread.
//! * Kernels compute each output element in the same floating-point order
//!   regardless of which partition it lands in — partition boundaries select
//!   *who* computes an element, never *how*.
//! * Reductions ([`chunked_sum`], [`chunked_dot`], [`chunked_sumsq_f64`])
//!   always use fixed-size chunk boundaries (independent of the thread
//!   count) and combine the per-chunk partials in ascending chunk order, so
//!   the association order of the floating-point sum is a constant of the
//!   input length alone.
//!
//! The integration test `tests/parallel_determinism.rs` asserts the contract
//! for threads ∈ {1, 2, 4} over matmul, conv forward/backward and a full FL
//! round.
//!
//! # Thread count
//!
//! The pool width defaults to [`std::thread::available_parallelism`] and can
//! be pinned with the `DINAR_THREADS` environment variable (CI determinism
//! tests set it to exercise fixed widths) or programmatically with
//! [`set_threads`]. Nested parallel regions run serially: a worker thread
//! that reaches another parallel op executes it inline, so the concurrent FL
//! client fan-out in `dinar-fl` does not multiply into clients × threads
//! oversubscription.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configured pool width; 0 means "not resolved yet".
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set on pool worker threads so nested parallel regions run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Explicit pool configuration.
///
/// Most callers never construct one: the kernels consult the process-wide
/// width via [`threads`]. `ParConfig` exists so tests and harnesses can
/// resolve or override the width explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Number of worker threads a parallel region may fan out to (≥ 1).
    pub threads: usize,
}

impl ParConfig {
    /// Resolves the default width: `DINAR_THREADS` if set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`], clamped
    /// to at least 1.
    pub fn from_env() -> Self {
        let from_var = std::env::var("DINAR_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1);
        let threads = from_var.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        ParConfig { threads }
    }

    /// A configuration with an explicit width (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        ParConfig {
            threads: threads.max(1),
        }
    }
}

/// The process-wide pool width, resolving [`ParConfig::from_env`] on first
/// use.
pub fn threads() -> usize {
    let current = THREADS.load(Ordering::Relaxed);
    if current != 0 {
        return current;
    }
    let resolved = ParConfig::from_env().threads;
    // A racing resolver writes the same value; last store wins harmlessly.
    THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the process-wide pool width (clamped to at least 1).
///
/// Intended for tests and harnesses that must compare fixed widths;
/// long-running code should configure via `DINAR_THREADS` instead.
pub fn set_threads(threads: usize) {
    THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// Restores the pool width to the [`ParConfig::from_env`] default.
pub fn reset_threads() {
    THREADS.store(ParConfig::from_env().threads, Ordering::Relaxed);
}

/// `true` on a pool worker thread (nested regions run inline there).
pub fn in_parallel_region() -> bool {
    IN_POOL.with(Cell::get)
}

/// Balanced partition of `granules` work units into `parts` contiguous
/// groups: the first `granules % parts` groups get one extra unit.
fn split_counts(granules: usize, parts: usize) -> Vec<usize> {
    let base = granules / parts;
    let extra = granules % parts;
    (0..parts)
        .map(|p| base + usize::from(p < extra))
        .collect()
}

/// Runs `f` over a balanced contiguous partition of `data`, in parallel.
///
/// `data` is split at multiples of `granule` elements (a "granule" is the
/// indivisible unit — e.g. one output row of length `n`). Each part is
/// passed to `f` together with the element offset of its first element, on
/// its own scoped thread. The partition uses at most [`threads`] parts and
/// at least `min_granules` granules per part; below that (or on a nested
/// call from a worker thread) the whole slice is processed inline with
/// `f(0, data)`.
///
/// Determinism: `f` must compute each element of its part from `data`'s
/// coordinates alone (same FP order wherever the partition boundary falls);
/// then the result is bit-identical for every thread count.
///
/// A panic in any part (e.g. a `sanitize` check) propagates to the caller
/// once the scope joins.
pub fn for_each_part_mut<T, F>(data: &mut [T], granule: usize, min_granules: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let granule = granule.max(1);
    debug_assert!(
        data.len() % granule == 0,
        "for_each_part_mut: len {} not a multiple of granule {granule}",
        data.len()
    );
    let granules = data.len() / granule;
    let parts = threads()
        .min(granules / min_granules.max(1))
        .max(1);
    if parts <= 1 || in_parallel_region() {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    let counts = split_counts(granules, parts);
    crate::profile::record_pool_region(counts.iter().filter(|&&c| c > 0).count() as u64);
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut offset = 0usize;
        for (p, &count) in counts.iter().enumerate() {
            // The last part also absorbs any sub-granule tail.
            let take = if p + 1 == counts.len() {
                rest.len()
            } else {
                count * granule
            };
            let (part, tail) = rest.split_at_mut(take);
            rest = tail;
            let part_offset = offset;
            offset += take;
            if part.is_empty() {
                continue;
            }
            scope.spawn(move || {
                IN_POOL.with(|flag| flag.set(true));
                f(part_offset, part);
            });
        }
    });
}

/// Applies `f` to every item of `items` in parallel (one logical task per
/// item) and returns the results **in item order**.
///
/// This is the fan-out primitive for coarse-grained, data-independent tasks
/// — one FL client's local round, for example. Each worker thread processes
/// a contiguous range of items; results land in a pre-sized buffer slot per
/// item, so the returned order (and any order-sensitive fold the caller
/// does) is independent of scheduling.
pub fn map_items_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(items.len(), || None);
    {
        let results_slice = results.as_mut_slice();
        let f2 = |offset: usize, part: &mut [(Option<&mut Option<R>>, &mut T)]| {
            for (local, (slot, item)) in part.iter_mut().enumerate() {
                if let Some(slot) = slot.as_mut() {
                    **slot = Some(f(offset + local, item));
                }
            }
        };
        let mut zipped: Vec<(Option<&mut Option<R>>, &mut T)> = results_slice
            .iter_mut()
            .map(Some)
            .zip(items.iter_mut())
            .collect();
        for_each_part_mut(&mut zipped, 1, 1, f2);
    }
    results
        .into_iter()
        .map(|r| match r {
            Some(r) => r,
            // Unreachable: every slot is written exactly once above, and a
            // worker panic propagates out of the scope before we get here.
            None => unreachable!("map_items_mut slot left unfilled"),
        })
        .collect()
}

/// Fixed reduction chunk length (elements). A constant, so the association
/// order of chunked reductions never depends on the thread count.
const REDUCE_CHUNK: usize = 4096;

/// Computes the per-chunk partials of a fixed-chunk reduction in parallel
/// and returns them in chunk order. `partial(start, end)` must be a pure
/// function of the chunk coordinates.
fn chunk_partials<A, P>(len: usize, partial: P) -> Vec<A>
where
    A: Send + Default + Clone,
    P: Fn(usize, usize) -> A + Sync,
{
    let chunks = len.div_ceil(REDUCE_CHUNK);
    let mut partials = vec![A::default(); chunks];
    for_each_part_mut(&mut partials, 1, 4, |first_chunk, part| {
        for (c, slot) in part.iter_mut().enumerate() {
            let start = (first_chunk + c) * REDUCE_CHUNK;
            let end = (start + REDUCE_CHUNK).min(len);
            *slot = partial(start, end);
        }
    });
    partials
}

/// Sum of `data` with a fixed-chunk association order (see module docs).
///
/// For inputs of at most one chunk this is the plain left fold; above that,
/// per-chunk left folds are combined in ascending chunk order.
pub fn chunked_sum(data: &[f32]) -> f32 {
    if data.len() <= REDUCE_CHUNK {
        return data.iter().sum();
    }
    chunk_partials(data.len(), |start, end| data[start..end].iter().sum::<f32>())
        .iter()
        .sum()
}

/// Dot product of `a` and `b` (equal lengths) with fixed-chunk association
/// order.
pub fn chunked_dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "chunked_dot length mismatch");
    if a.len() <= REDUCE_CHUNK {
        return a.iter().zip(b).map(|(&x, &y)| x * y).sum();
    }
    chunk_partials(a.len(), |start, end| {
        a[start..end]
            .iter()
            .zip(&b[start..end])
            .map(|(&x, &y)| x * y)
            .sum::<f32>()
    })
    .iter()
    .sum()
}

/// Sum of squares of `data`, accumulated in `f64`, with fixed-chunk
/// association order. Backs [`crate::Tensor::norm_l2`].
pub fn chunked_sumsq_f64(data: &[f32]) -> f64 {
    if data.len() <= REDUCE_CHUNK {
        return data
            .iter()
            .map(|&x| f64::from(x) * f64::from(x))
            .sum();
    }
    chunk_partials(data.len(), |start, end| {
        data[start..end]
            .iter()
            .map(|&x| f64::from(x) * f64::from(x))
            .sum::<f64>()
    })
    .iter()
    .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the global pool width.
    static WIDTH_LOCK: Mutex<()> = Mutex::new(());

    fn with_width<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(n);
        let out = f();
        reset_threads();
        out
    }

    #[test]
    fn split_counts_is_balanced_and_complete() {
        assert_eq!(split_counts(10, 3), vec![4, 3, 3]);
        assert_eq!(split_counts(3, 3), vec![1, 1, 1]);
        assert_eq!(split_counts(2, 4), vec![1, 1, 0, 0]);
        for (granules, parts) in [(17, 4), (100, 7), (1, 1)] {
            assert_eq!(split_counts(granules, parts).iter().sum::<usize>(), granules);
        }
    }

    #[test]
    fn for_each_part_covers_every_element_once() {
        for width in [1, 2, 4, 9] {
            with_width(width, || {
                let mut data = vec![0u32; 103];
                for_each_part_mut(&mut data, 1, 1, |offset, part| {
                    for (i, x) in part.iter_mut().enumerate() {
                        *x += (offset + i) as u32;
                    }
                });
                for (i, &x) in data.iter().enumerate() {
                    assert_eq!(x, i as u32, "element {i} written wrongly");
                }
            });
        }
    }

    #[test]
    fn granule_boundaries_are_respected() {
        with_width(3, || {
            let mut data = vec![0usize; 7 * 5];
            for_each_part_mut(&mut data, 5, 1, |offset, part| {
                assert_eq!(offset % 5, 0, "part starts mid-granule");
                assert_eq!(part.len() % 5, 0, "part splits a granule");
                for x in part.iter_mut() {
                    *x = offset;
                }
            });
        });
    }

    #[test]
    fn min_granules_forces_serial() {
        with_width(8, || {
            let mut calls = vec![0u8; 4];
            // 4 granules, min 16 per part -> must run as one inline call.
            for_each_part_mut(&mut calls, 1, 16, |offset, part| {
                assert_eq!(offset, 0);
                assert_eq!(part.len(), 4);
                for x in part.iter_mut() {
                    *x = 1;
                }
            });
            assert_eq!(calls, vec![1; 4]);
        });
    }

    #[test]
    fn nested_regions_run_inline() {
        with_width(4, || {
            let mut outer = vec![false; 4];
            for_each_part_mut(&mut outer, 1, 1, |_, part| {
                assert!(in_parallel_region());
                let mut inner = vec![0u8; 64];
                // Inner region must not spawn (and must still compute).
                for_each_part_mut(&mut inner, 1, 1, |o, p| {
                    for (i, x) in p.iter_mut().enumerate() {
                        *x = ((o + i) % 251) as u8;
                    }
                });
                assert!(inner.iter().enumerate().all(|(i, &x)| x == (i % 251) as u8));
                for x in part.iter_mut() {
                    *x = true;
                }
            });
            assert!(outer.iter().all(|&x| x));
        });
    }

    #[test]
    fn map_items_preserves_order() {
        for width in [1, 3, 8] {
            with_width(width, || {
                let mut items: Vec<usize> = (0..23).collect();
                let out = map_items_mut(&mut items, |i, item| {
                    assert_eq!(i, *item);
                    i * 10
                });
                assert_eq!(out, (0..23).map(|i| i * 10).collect::<Vec<_>>());
            });
        }
    }

    #[test]
    fn chunked_reductions_are_width_invariant() {
        let data: Vec<f32> = (0..20_000).map(|i| ((i * 37) % 101) as f32 * 0.37 - 18.0).collect();
        let other: Vec<f32> = (0..20_000).map(|i| ((i * 53) % 97) as f32 * 0.11 - 5.0).collect();
        let (base_sum, base_dot, base_sq) = with_width(1, || {
            (chunked_sum(&data), chunked_dot(&data, &other), chunked_sumsq_f64(&data))
        });
        for width in [2, 4, 7] {
            with_width(width, || {
                assert_eq!(chunked_sum(&data).to_bits(), base_sum.to_bits());
                assert_eq!(chunked_dot(&data, &other).to_bits(), base_dot.to_bits());
                assert_eq!(chunked_sumsq_f64(&data).to_bits(), base_sq.to_bits());
            });
        }
    }

    #[test]
    fn chunked_sum_short_input_matches_serial_fold() {
        let data: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        assert_eq!(chunked_sum(&data), data.iter().sum::<f32>());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            with_width(2, || {
                let mut data = vec![0u8; 8];
                for_each_part_mut(&mut data, 1, 1, |offset, _| {
                    assert!(offset < 4, "synthetic failure in a worker");
                });
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn config_from_env_is_positive() {
        assert!(ParConfig::from_env().threads >= 1);
        assert_eq!(ParConfig::with_threads(0).threads, 1);
    }
}

//! Property-based tests of the tensor substrate.

use dinar_tensor::{conv, Rng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reshape never changes the underlying data.
    #[test]
    fn reshape_preserves_data(r in 1usize..8, c in 1usize..8) {
        let t = Tensor::from_fn(&[r, c], |i| i as f32);
        let flat = t.reshape(&[r * c]).unwrap();
        prop_assert_eq!(t.as_slice(), flat.as_slice());
        let back = flat.reshape(&[r, c]).unwrap();
        prop_assert_eq!(back, t);
    }

    /// matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let a = rng.randn(&[m, k]);
        let b = rng.randn(&[k, n]);
        let c = rng.randn(&[k, n]);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    /// matmul_t and t_matmul agree with the explicit-transpose forms.
    #[test]
    fn fused_transpose_products_agree(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let a = rng.randn(&[m, k]);
        let b = rng.randn(&[n, k]);
        prop_assert!(a
            .matmul_t(&b)
            .unwrap()
            .approx_eq(&a.matmul(&b.transpose().unwrap()).unwrap(), 1e-3));
        let c = rng.randn(&[k, m]);
        let d = rng.randn(&[k, n]);
        prop_assert!(c
            .t_matmul(&d)
            .unwrap()
            .approx_eq(&c.transpose().unwrap().matmul(&d).unwrap(), 1e-3));
    }

    /// The L2 norm satisfies the triangle inequality and scaling axiom.
    #[test]
    fn norm_axioms(v in prop::collection::vec(-50.0f32..50.0, 1..64), k in -4.0f32..4.0) {
        let a = Tensor::from_slice(&v);
        let b = a.mul_scalar(k);
        prop_assert!((b.norm_l2() - k.abs() * a.norm_l2()).abs() < 1e-2 * (1.0 + a.norm_l2()));
        let sum = a.add(&b).unwrap();
        prop_assert!(sum.norm_l2() <= a.norm_l2() + b.norm_l2() + 1e-3);
    }

    /// im2col/col2im stay adjoint for arbitrary geometries.
    #[test]
    fn conv_lowering_adjointness(
        c in 1usize..3,
        hw in 3usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..500,
    ) {
        let geom = conv::Conv2dGeom {
            channels: c,
            height: hw,
            width: hw,
            kernel_h: k,
            kernel_w: k,
            stride,
            padding: pad,
        };
        prop_assume!(geom.output_size().is_ok());
        let mut rng = Rng::seed_from(seed);
        let x = rng.randn(&[1, c, hw, hw]);
        let cols = conv::im2col2d(&x, &geom).unwrap();
        let y = rng.randn(cols.shape());
        let lhs = cols.dot(&y).unwrap() as f64;
        let rhs = x.dot(&conv::col2im2d(&y, 1, &geom).unwrap()).unwrap() as f64;
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// gather_rows then vstack reconstructs any row permutation.
    #[test]
    fn gather_rows_is_faithful(r in 1usize..10, c in 1usize..6, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let t = rng.randn(&[r, c]);
        let perm = rng.permutation(r);
        let g = t.gather_rows(&perm).unwrap();
        for (new_row, &old_row) in perm.iter().enumerate() {
            let got = g.row(new_row).unwrap();
            let expected = t.row(old_row).unwrap();
            prop_assert_eq!(got.as_slice(), expected.as_slice());
        }
    }

    /// Dirichlet draws are valid simplex points for any alpha.
    #[test]
    fn dirichlet_is_simplex(alpha in 0.05f64..50.0, k in 1usize..20, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let p = rng.dirichlet(alpha, k);
        prop_assert_eq!(p.len(), k);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

//! Property tests of the tensor substrate, driven by the crate's own
//! seeded RNG instead of `proptest` so the whole suite is deterministic and
//! dependency-free: every case is a pure function of the loop index.

use dinar_tensor::{conv, Rng, Tensor};

const CASES: u64 = 48;

/// Per-case RNG: independent, reproducible stream per (property, case).
fn case_rng(property: u64, case: u64) -> Rng {
    Rng::seed_from(0xD1AA_0000 + property * 10_007 + case)
}

/// Samples a dimension in `1..=max`.
fn dim(rng: &mut Rng, max: usize) -> usize {
    1 + rng.below(max)
}

/// Reshape never changes the underlying data.
#[test]
fn reshape_preserves_data() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let (r, c) = (dim(&mut rng, 7), dim(&mut rng, 7));
        let t = Tensor::from_fn(&[r, c], |i| i as f32);
        let flat = t.reshape(&[r * c]).unwrap();
        assert_eq!(t.as_slice(), flat.as_slice());
        let back = flat.reshape(&[r, c]).unwrap();
        assert_eq!(back, t);
    }
}

/// matmul distributes over addition: A(B + C) = AB + AC.
#[test]
fn matmul_distributes() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let (m, k, n) = (dim(&mut rng, 4), dim(&mut rng, 4), dim(&mut rng, 4));
        let a = rng.randn(&[m, k]);
        let b = rng.randn(&[k, n]);
        let c = rng.randn(&[k, n]);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        assert!(lhs.approx_eq(&rhs, 1e-3), "case {case}");
    }
}

/// matmul_t and t_matmul agree with the explicit-transpose forms.
#[test]
fn fused_transpose_products_agree() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let (m, k, n) = (dim(&mut rng, 5), dim(&mut rng, 5), dim(&mut rng, 5));
        let a = rng.randn(&[m, k]);
        let b = rng.randn(&[n, k]);
        assert!(
            a.matmul_t(&b)
                .unwrap()
                .approx_eq(&a.matmul(&b.transpose().unwrap()).unwrap(), 1e-3),
            "case {case}"
        );
        let c = rng.randn(&[k, m]);
        let d = rng.randn(&[k, n]);
        assert!(
            c.t_matmul(&d)
                .unwrap()
                .approx_eq(&c.transpose().unwrap().matmul(&d).unwrap(), 1e-3),
            "case {case}"
        );
    }
}

/// The L2 norm satisfies the triangle inequality and scaling axiom.
#[test]
fn norm_axioms() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let len = dim(&mut rng, 63);
        let v: Vec<f32> = (0..len)
            .map(|_| (rng.uniform() - 0.5) * 100.0)
            .collect();
        let k = (rng.uniform() - 0.5) * 8.0;
        let a = Tensor::from_slice(&v);
        let b = a.mul_scalar(k);
        assert!(
            (b.norm_l2() - k.abs() * a.norm_l2()).abs() < 1e-2 * (1.0 + a.norm_l2()),
            "case {case}"
        );
        let sum = a.add(&b).unwrap();
        assert!(
            sum.norm_l2() <= a.norm_l2() + b.norm_l2() + 1e-3,
            "case {case}"
        );
    }
}

/// im2col/col2im stay adjoint for arbitrary geometries.
#[test]
fn conv_lowering_adjointness() {
    let mut checked = 0u32;
    for case in 0..CASES * 2 {
        let mut rng = case_rng(5, case);
        let geom = conv::Conv2dGeom {
            channels: dim(&mut rng, 2),
            height: 2 + dim(&mut rng, 5),
            width: 0, // patched below to stay square
            kernel_h: 0,
            kernel_w: 0,
            stride: dim(&mut rng, 2),
            padding: rng.below(2),
        };
        let k = dim(&mut rng, 3);
        let geom = conv::Conv2dGeom {
            width: geom.height,
            kernel_h: k,
            kernel_w: k,
            ..geom
        };
        if geom.output_size().is_err() {
            continue; // the analogue of prop_assume!
        }
        checked += 1;
        let (c, hw) = (geom.channels, geom.height);
        let x = rng.randn(&[1, c, hw, hw]);
        let cols = conv::im2col2d(&x, &geom).unwrap();
        let y = rng.randn(cols.shape());
        let lhs = cols.dot(&y).unwrap() as f64;
        let rhs = x.dot(&conv::col2im2d(&y, 1, &geom).unwrap()).unwrap() as f64;
        assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "case {case}");
    }
    assert!(checked >= CASES as u32 / 2, "too few valid geometries");
}

/// gather_rows then row-reads reconstruct any row permutation.
#[test]
fn gather_rows_is_faithful() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let (r, c) = (dim(&mut rng, 9), dim(&mut rng, 5));
        let t = rng.randn(&[r, c]);
        let perm = rng.permutation(r);
        let g = t.gather_rows(&perm).unwrap();
        for (new_row, &old_row) in perm.iter().enumerate() {
            let got = g.row(new_row).unwrap();
            let expected = t.row(old_row).unwrap();
            assert_eq!(got.as_slice(), expected.as_slice(), "case {case}");
        }
    }
}

/// Dirichlet draws are valid simplex points for any alpha.
#[test]
fn dirichlet_is_simplex() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let alpha = 0.05 + f64::from(rng.uniform()) * 49.95;
        let k = dim(&mut rng, 19);
        let p = rng.dirichlet(alpha, k);
        assert_eq!(p.len(), k);
        assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)), "case {case}");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "case {case}");
    }
}

//! Attack feature extraction from target-model predictions.
//!
//! The shadow attack classifies fixed-size feature vectors derived from the
//! target model's black-box output on a sample: the top softmax
//! confidences (sorted, class-agnostic), the prediction entropy, the
//! cross-entropy loss at the true label, and whether the prediction was
//! correct. These are the standard Shokri-style attack features; the loss
//! and correctness channels carry the class-conditional information the
//! original per-class attack models capture.

use crate::Result;
use dinar_data::Dataset;
use dinar_fl::eval::confidences_of_params;
use dinar_nn::{Model, ModelParams};
use dinar_tensor::Tensor;

/// Number of features per sample produced by [`extract`].
pub const NUM_FEATURES: usize = 6;

/// Extracts the `[n, 6]` attack-feature matrix of a target model on a
/// dataset: `[top1, top2, top3, entropy, true-label loss, correct]`.
///
/// # Errors
///
/// Propagates model-evaluation errors.
pub fn extract(
    target: &ModelParams,
    template: &mut Model,
    samples: &Dataset,
) -> Result<Tensor> {
    let confs = confidences_of_params(target, template, samples).map_err(crate::AttackError::from)?;
    let n = samples.len();
    let classes = samples.num_classes();
    let labels = samples.labels();
    let p = confs.as_slice();
    let mut features = vec![0.0f32; n * NUM_FEATURES];
    for i in 0..n {
        let row = &p[i * classes..(i + 1) * classes];
        let mut sorted: Vec<f32> = row.to_vec();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let top1 = sorted.first().copied().unwrap_or(0.0);
        let top2 = sorted.get(1).copied().unwrap_or(0.0);
        let top3 = sorted.get(2).copied().unwrap_or(0.0);
        let entropy: f32 = row
            .iter()
            .filter(|&&x| x > 0.0)
            .map(|&x| -x * x.ln())
            .sum();
        let true_p = row[labels[i]].max(1e-12);
        let loss = -true_p.ln();
        let correct = if row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, _)| j)
            == Some(labels[i])
        {
            1.0
        } else {
            0.0
        };
        let out = &mut features[i * NUM_FEATURES..(i + 1) * NUM_FEATURES];
        out[0] = top1;
        out[1] = top2;
        out[2] = top3;
        // Normalize entropy by ln(classes) so it stays in [0, 1] across
        // datasets with different class counts.
        out[3] = entropy / (classes as f32).ln().max(1e-6);
        // Squash the unbounded loss into [0, 1) for stable attack training.
        out[4] = loss / (1.0 + loss);
        out[5] = correct;
    }
    Ok(Tensor::from_vec(features, &[n, NUM_FEATURES]).map_err(dinar_nn::NnError::from)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::models::{self, Activation};
    use dinar_tensor::Rng;

    #[test]
    fn features_are_bounded_and_shaped() {
        let mut rng = Rng::seed_from(0);
        let model = models::mlp(&[4, 8, 3], Activation::ReLU, &mut rng).unwrap();
        let params = model.params();
        let mut template = models::mlp(&[4, 8, 3], Activation::ReLU, &mut rng).unwrap();
        let ds = Dataset::new(rng.randn(&[12, 4]), (0..12).map(|i| i % 3).collect(), &[4], 3)
            .unwrap();
        let f = extract(&params, &mut template, &ds).unwrap();
        assert_eq!(f.shape(), &[12, NUM_FEATURES]);
        for i in 0..12 {
            let top1 = f.get(&[i, 0]).unwrap();
            let top2 = f.get(&[i, 1]).unwrap();
            let top3 = f.get(&[i, 2]).unwrap();
            assert!(top1 >= top2 && top2 >= top3, "sorted confidences");
            assert!((0.0..=1.0).contains(&f.get(&[i, 3]).unwrap()), "entropy");
            assert!((0.0..1.0).contains(&f.get(&[i, 4]).unwrap()), "loss squash");
            let c = f.get(&[i, 5]).unwrap();
            assert!(c == 0.0 || c == 1.0, "correct flag");
        }
    }

    #[test]
    fn confident_correct_prediction_has_low_loss_feature() {
        // Hand-build a "model output" via a dataset the model nails: use a
        // linear model trained? Simpler: features reflect relationships, so
        // test monotonicity through two contrived confidence rows is not
        // possible via public API; instead check that across random samples
        // the loss feature correlates negatively with top1.
        let mut rng = Rng::seed_from(1);
        let model = models::mlp(&[4, 16, 2], Activation::ReLU, &mut rng).unwrap();
        let params = model.params();
        let mut template = models::mlp(&[4, 16, 2], Activation::ReLU, &mut rng).unwrap();
        let ds = Dataset::new(rng.randn(&[64, 4]), (0..64).map(|i| i % 2).collect(), &[4], 2)
            .unwrap();
        let f = extract(&params, &mut template, &ds).unwrap();
        // For binary classes: when the prediction is correct, loss < ln 2.
        for i in 0..64 {
            if f.get(&[i, 5]).unwrap() == 1.0 {
                let squashed = f.get(&[i, 4]).unwrap();
                let loss = squashed / (1.0 - squashed);
                assert!(loss <= std::f32::consts::LN_2 + 1e-4);
            }
        }
    }
}

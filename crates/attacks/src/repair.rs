//! The adaptive "repair" attacker for layer-obfuscated models.
//!
//! A naive MIA against a model whose layer `j` holds random values fails
//! trivially — the model's predictions are garbage. But a white-box FL
//! attacker (§2.2) knows the architecture, can *see* which layer looks
//! random, and holds prior-knowledge data. The strongest realistic attack is
//! therefore to **repair** the obfuscated layer: re-train just that layer on
//! the attacker's own data (freezing everything else), then run a standard
//! MIA on the repaired model.
//!
//! If the obfuscated layer was *not* where the membership information lived,
//! the repaired model still contains the victims' memorization in its intact
//! layers and the MIA succeeds — which is exactly the paper's Fig. 4(b)/5
//! finding that obfuscating a low-leakage layer "is not sufficient for the
//! protection of the overall client model". Obfuscating the most sensitive
//! layer destroys the evidence: no repair can resurrect it, and the attack
//! AUC pins to 50%.

use crate::{AttackError, MembershipAttack, Result};
use dinar_data::Dataset;
use dinar_nn::loss::CrossEntropyLoss;
use dinar_nn::{Model, ModelParams};
use dinar_tensor::Rng;

/// Configuration of the repair step.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairConfig {
    /// Trainable-layer indices the attacker believes are obfuscated.
    pub obfuscated_layers: Vec<usize>,
    /// Epochs of single-layer fine-tuning on the attacker's data.
    pub epochs: usize,
    /// Fine-tuning batch size.
    pub batch_size: usize,
    /// Fine-tuning learning rate.
    pub lr: f32,
    /// RNG seed for batch shuffling.
    pub seed: u64,
}

impl RepairConfig {
    /// A reasonable default repairing the given layers.
    pub fn for_layers(layers: &[usize]) -> Self {
        RepairConfig {
            obfuscated_layers: layers.to_vec(),
            epochs: 15,
            batch_size: 32,
            lr: 0.05,
            seed: 0x4E9A_5EED,
        }
    }
}

/// Wraps any [`MembershipAttack`] with a pre-scoring repair phase.
#[derive(Debug)]
pub struct RepairAttack<A> {
    inner: A,
    config: RepairConfig,
    attacker_data: Dataset,
}

impl<A: MembershipAttack> RepairAttack<A> {
    /// Creates the attack: `inner` scores the repaired model; `attacker_data`
    /// is the attacker's prior knowledge used for fine-tuning.
    pub fn new(inner: A, config: RepairConfig, attacker_data: Dataset) -> Self {
        RepairAttack {
            inner,
            config,
            attacker_data,
        }
    }

    /// Repairs the obfuscated layers of `target` by fine-tuning them (and
    /// only them) on the attacker's data, returning the repaired parameters.
    ///
    /// # Errors
    ///
    /// Propagates training errors and invalid layer indices.
    pub fn repair(&self, target: &ModelParams, template: &mut Model) -> Result<ModelParams> {
        template.set_params(target).map_err(AttackError::from)?;
        let mut rng = Rng::seed_from(self.config.seed);
        let loss_fn = CrossEntropyLoss;
        for _ in 0..self.config.epochs {
            for indices in self
                .attacker_data
                .batch_indices(self.config.batch_size, &mut rng)
            {
                let batch = self.attacker_data.batch(&indices)?;
                let logits = template
                    .forward(&batch.features, true)
                    .map_err(AttackError::from)?;
                let (_, grad) = loss_fn
                    .loss_and_grad(&logits, &batch.labels)
                    .map_err(AttackError::from)?;
                template.zero_grad();
                template.backward(&grad).map_err(AttackError::from)?;
                // SGD on the obfuscated layers only; everything else frozen.
                for &layer in &self.config.obfuscated_layers {
                    for (p, g) in template
                        .layer_params_and_grads(layer)
                        .map_err(AttackError::from)?
                    {
                        p.scaled_add_assign(-self.config.lr, g)
                            .map_err(dinar_nn::NnError::from)
                            .map_err(AttackError::from)?;
                    }
                }
            }
        }
        Ok(template.params())
    }
}

impl<A: MembershipAttack> MembershipAttack for RepairAttack<A> {
    fn name(&self) -> &'static str {
        "repair"
    }

    fn score(
        &mut self,
        target: &ModelParams,
        template: &mut Model,
        samples: &Dataset,
    ) -> Result<Vec<f32>> {
        let repaired = self.repair(target, template)?;
        self.inner.score(&repaired, template, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::LossThresholdAttack;
    use crate::evaluate_attack;
    use dinar_nn::models::{self, Activation};
    use dinar_nn::optim::{Optimizer, Sgd};
    use dinar_tensor::Tensor;

    fn noisy_dataset(n: usize, rng: &mut Rng) -> Dataset {
        let mut x = Tensor::zeros(&[n, 8]);
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 4;
            for j in 0..8 {
                let center = if j % 4 == class { 1.0 } else { 0.0 };
                x.set(&[i, j], rng.normal_with(center, 1.5)).unwrap();
            }
            labels.push(class);
        }
        Dataset::new(x, labels, &[8], 4).unwrap()
    }

    fn arch(rng: &mut Rng) -> dinar_nn::Result<Model> {
        models::mlp(&[8, 48, 48, 4], Activation::ReLU, rng)
    }

    #[test]
    fn repair_restores_utility_when_nonsensitive_layer_obfuscated() {
        // Easier data (low noise) so the repaired head has a high accuracy
        // ceiling; the attack-strength tests use the hard variant.
        let easy_dataset = |n: usize, rng: &mut Rng| {
            let mut x = Tensor::zeros(&[n, 8]);
            let mut labels = Vec::new();
            for i in 0..n {
                let class = i % 4;
                for j in 0..8 {
                    let center = if j % 4 == class { 1.0 } else { 0.0 };
                    x.set(&[i, j], rng.normal_with(center, 0.5)).unwrap();
                }
                labels.push(class);
            }
            Dataset::new(x, labels, &[8], 4).unwrap()
        };
        let mut rng = Rng::seed_from(0);
        let members = easy_dataset(48, &mut rng);
        let attacker_data = easy_dataset(120, &mut rng);

        // Overfit a victim.
        let mut victim = arch(&mut rng).unwrap();
        let mut opt = Sgd::new(0.1);
        let batch = members.full_batch().unwrap();
        for _ in 0..250 {
            let logits = victim.forward(&batch.features, true).unwrap();
            let (_, grad) = CrossEntropyLoss
                .loss_and_grad(&logits, &batch.labels)
                .unwrap();
            victim.zero_grad();
            victim.backward(&grad).unwrap();
            opt.step(&mut victim).unwrap();
        }
        // Obfuscate the FINAL layer (in this setup membership info
        // concentrates early, so the final layer is repairable).
        let mut obfuscated = victim.params();
        let last = obfuscated.num_layers() - 1;
        for t in &mut obfuscated.layers[last].tensors {
            *t = rng.rand_uniform(t.shape(), -0.5, 0.5);
        }
        let mut template = arch(&mut rng).unwrap();
        // Before repair: garbage predictions.
        let acc_before = dinar_fl::eval::accuracy_of_params(
            &obfuscated,
            &mut template,
            &members,
        )
        .unwrap();
        let attack = RepairAttack::new(
            LossThresholdAttack,
            RepairConfig {
                epochs: 80,
                lr: 0.2,
                ..RepairConfig::for_layers(&[last])
            },
            attacker_data,
        );
        let repaired = attack.repair(&obfuscated, &mut template).unwrap();
        let acc_after =
            dinar_fl::eval::accuracy_of_params(&repaired, &mut template, &members).unwrap();
        assert!(
            acc_after > acc_before + 0.2,
            "repair should restore utility: {acc_before} -> {acc_after}"
        );
    }

    #[test]
    fn repair_only_touches_obfuscated_layers() {
        let mut rng = Rng::seed_from(1);
        let attacker_data = noisy_dataset(64, &mut rng);
        let model = arch(&mut rng).unwrap();
        let target = model.params();
        let mut template = arch(&mut rng).unwrap();
        let attack = RepairAttack::new(
            LossThresholdAttack,
            RepairConfig {
                epochs: 3,
                ..RepairConfig::for_layers(&[1])
            },
            attacker_data,
        );
        let repaired = attack.repair(&target, &mut template).unwrap();
        // Layers 0 and 2 must be bit-identical; layer 1 changed.
        assert_eq!(repaired.layers[0], target.layers[0]);
        assert_eq!(repaired.layers[2], target.layers[2]);
        assert_ne!(repaired.layers[1], target.layers[1]);
    }

    #[test]
    fn scoring_delegates_to_inner_attack() {
        let mut rng = Rng::seed_from(2);
        let members = noisy_dataset(32, &mut rng);
        let nonmembers = noisy_dataset(32, &mut rng);
        let attacker_data = noisy_dataset(64, &mut rng);
        let model = arch(&mut rng).unwrap();
        let target = model.params();
        let mut template = arch(&mut rng).unwrap();
        let mut attack = RepairAttack::new(
            LossThresholdAttack,
            RepairConfig {
                epochs: 1,
                ..RepairConfig::for_layers(&[0])
            },
            attacker_data,
        );
        // Untrained target: AUC near chance regardless of repair.
        let result =
            evaluate_attack(&mut attack, &target, &mut template, &members, &nonmembers).unwrap();
        assert!(result.auc < 0.7);
    }
}

//! Model inversion attack — the paper's stated future work ("investigating
//! DINAR's resilience against other privacy threats, such as property
//! inference attacks and model inversion attacks"), implemented here as an
//! extension.
//!
//! The attacker holds the model parameters (white-box FL) and reconstructs a
//! *representative input* for a target class by gradient ascent on the
//! class logit (Fredrikson et al. style): start from noise, repeatedly
//! compute `∂ logit_c / ∂ x`, and climb. On our synthetic datasets the
//! ground-truth class prototype is known, so reconstruction quality is
//! directly measurable as the cosine similarity between the inversion and
//! the prototype — giving a quantitative answer to "does DINAR also blunt
//! inversion?" (see the `ext_inversion` experiment binary).

use crate::{AttackError, Result};
use dinar_nn::loss::CrossEntropyLoss;
use dinar_nn::{Model, ModelParams};
use dinar_tensor::{Rng, Tensor};

/// Configuration of the inversion optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InversionConfig {
    /// Gradient-ascent steps.
    pub steps: usize,
    /// Step size.
    pub lr: f32,
    /// L2 pull toward zero keeping the reconstruction in-distribution.
    pub weight_decay: f32,
    /// RNG seed for the starting point.
    pub seed: u64,
}

impl Default for InversionConfig {
    fn default() -> Self {
        InversionConfig {
            steps: 200,
            lr: 0.5,
            weight_decay: 0.01,
            seed: 0x1172,
        }
    }
}

/// Inverts `target` for `class`: returns the reconstructed input of shape
/// `sample_shape` (without the batch dimension).
///
/// Maximizing the class logit is implemented as minimizing the cross-entropy
/// of the class label, reusing the model's backward pass to obtain the input
/// gradient.
///
/// # Errors
///
/// Returns [`AttackError::InvalidConfig`] for an empty shape or an
/// out-of-range class, and propagates model errors.
pub fn invert_class(
    target: &ModelParams,
    template: &mut Model,
    sample_shape: &[usize],
    class: usize,
    config: &InversionConfig,
) -> Result<Tensor> {
    if sample_shape.is_empty() {
        return Err(AttackError::InvalidConfig {
            reason: "inversion needs a non-empty sample shape".into(),
        });
    }
    template.set_params(target)?;
    let mut rng = Rng::seed_from(config.seed);
    let mut shape = vec![1usize];
    shape.extend_from_slice(sample_shape);
    let mut x = rng.randn_with(&shape, 0.0, 0.1);
    let loss_fn = CrossEntropyLoss;
    for _ in 0..config.steps {
        let logits = template.forward(&x, false)?;
        if class >= logits.ncols().map_err(dinar_nn::NnError::from)? {
            return Err(AttackError::InvalidConfig {
                reason: format!("class {class} out of range"),
            });
        }
        let (_, grad_logits) = loss_fn.loss_and_grad(&logits, &[class])?;
        template.zero_grad();
        let grad_input = template.backward(&grad_logits)?;
        // Descend the class loss (= ascend the class logit) + decay.
        x.scaled_add_assign(-config.lr, &grad_input)
            .map_err(dinar_nn::NnError::from)?;
        x.scale_inplace(1.0 - config.weight_decay);
    }
    template.zero_grad();
    Ok(x.reshape(sample_shape).map_err(dinar_nn::NnError::from)?)
}

/// Cosine similarity between two equally-shaped tensors (0 if either is
/// numerically zero).
pub fn cosine_similarity(a: &Tensor, b: &Tensor) -> f32 {
    let na = a.norm_l2();
    let nb = b.norm_l2();
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    a.dot(b).map(|d| d / (na * nb)).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_data::Dataset;
    use dinar_nn::models::{self, Activation};
    use dinar_nn::optim::{Optimizer, Sgd};

    /// Trains a model on two classes with known prototypes and checks that
    /// inversion recovers the prototype direction.
    #[test]
    fn inversion_recovers_class_prototypes() {
        let mut rng = Rng::seed_from(0);
        let d = 12;
        let proto: Vec<Tensor> = (0..2).map(|_| rng.randn(&[d])).collect();
        let n = 80;
        let mut x = Tensor::zeros(&[n, d]);
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            for j in 0..d {
                let v = proto[class].as_slice()[j] + 0.4 * rng.normal();
                x.set(&[i, j], v).unwrap();
            }
            labels.push(class);
        }
        let data = Dataset::new(x, labels, &[d], 2).unwrap();
        let mut model = models::mlp(&[d, 32, 2], Activation::ReLU, &mut rng).unwrap();
        let mut opt = Sgd::new(0.1);
        let batch = data.full_batch().unwrap();
        for _ in 0..150 {
            let logits = model.forward(&batch.features, true).unwrap();
            let (_, grad) = CrossEntropyLoss
                .loss_and_grad(&logits, &batch.labels)
                .unwrap();
            model.zero_grad();
            model.backward(&grad).unwrap();
            opt.step(&mut model).unwrap();
        }
        let params = model.params();
        let mut template = models::mlp(&[d, 32, 2], Activation::ReLU, &mut rng).unwrap();
        for class in 0..2 {
            let inv =
                invert_class(&params, &mut template, &[d], class, &InversionConfig::default())
                    .unwrap();
            let own = cosine_similarity(&inv, &proto[class]);
            let other = cosine_similarity(&inv, &proto[1 - class]);
            assert!(
                own > other + 0.2,
                "class {class}: own similarity {own} vs other {other}"
            );
            assert!(own > 0.3, "class {class}: reconstruction too weak ({own})");
        }
    }

    #[test]
    fn inversion_of_random_model_recovers_nothing() {
        let mut rng = Rng::seed_from(1);
        let proto = rng.randn(&[12]);
        let model = models::mlp(&[12, 32, 2], Activation::ReLU, &mut rng).unwrap();
        let params = model.params();
        let mut template = models::mlp(&[12, 32, 2], Activation::ReLU, &mut rng).unwrap();
        let inv = invert_class(
            &params,
            &mut template,
            &[12],
            0,
            &InversionConfig::default(),
        )
        .unwrap();
        // A random 12-dim direction has |cos| ~ 0.29 std; allow slack but
        // rule out genuine prototype recovery.
        assert!(cosine_similarity(&inv, &proto).abs() < 0.75);
    }

    #[test]
    fn invalid_requests_rejected() {
        let mut rng = Rng::seed_from(2);
        let model = models::mlp(&[4, 4, 2], Activation::ReLU, &mut rng).unwrap();
        let params = model.params();
        let mut template = models::mlp(&[4, 4, 2], Activation::ReLU, &mut rng).unwrap();
        assert!(invert_class(&params, &mut template, &[], 0, &InversionConfig::default()).is_err());
        assert!(
            invert_class(&params, &mut template, &[4], 5, &InversionConfig::default()).is_err()
        );
    }

    #[test]
    fn cosine_similarity_basics() {
        let a = Tensor::from_slice(&[1.0, 0.0]);
        let b = Tensor::from_slice(&[2.0, 0.0]);
        let c = Tensor::from_slice(&[0.0, 3.0]);
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&a, &c).abs() < 1e-6);
        assert_eq!(cosine_similarity(&a, &Tensor::zeros(&[2])), 0.0);
    }
}

//! Attack reporting beyond the single AUC number.
//!
//! The paper evaluates with attack AUC (Appendix A); the modern MIA
//! literature additionally reports **TPR at low FPR** ("can the attacker
//! confidently identify *some* members?") and balanced attack accuracy at
//! the best threshold. This module derives all of them from the same score
//! sets so experiment binaries can print a full picture.

use crate::AttackResult;
use dinar_metrics::roc::{attack_auc, roc_curve};
use dinar_tensor::json::{Json, ToJson};

/// A full attack report derived from member/non-member score sets.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Raw AUC in `[0, 1]`.
    pub auc: f64,
    /// Reported AUC in `[0.5, 1]` (inversion-corrected, as the paper plots).
    pub reported_auc: f64,
    /// Best balanced accuracy over all thresholds.
    pub best_accuracy: f64,
    /// True-positive rate at 10% false-positive rate.
    pub tpr_at_10pct_fpr: f64,
    /// True-positive rate at 1% false-positive rate.
    pub tpr_at_1pct_fpr: f64,
    /// Number of members / non-members evaluated.
    pub samples_per_side: (usize, usize),
}

impl ToJson for AttackReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("auc", self.auc.to_json()),
            ("reported_auc", self.reported_auc.to_json()),
            ("best_accuracy", self.best_accuracy.to_json()),
            ("tpr_at_10pct_fpr", self.tpr_at_10pct_fpr.to_json()),
            ("tpr_at_1pct_fpr", self.tpr_at_1pct_fpr.to_json()),
            ("samples_per_side", self.samples_per_side.to_json()),
        ])
    }
}

impl AttackReport {
    /// Builds the report from raw score sets (higher = more likely member).
    ///
    /// # Panics
    ///
    /// Panics if either score set is empty or contains NaN (same contract
    /// as [`attack_auc`]).
    pub fn from_scores(member_scores: &[f32], nonmember_scores: &[f32]) -> Self {
        let auc = attack_auc(member_scores, nonmember_scores);
        let curve = roc_curve(member_scores, nonmember_scores);
        let mut best_accuracy: f64 = 0.5;
        for point in &curve {
            // Balanced accuracy at this threshold.
            let acc = (point.tpr + (1.0 - point.fpr)) / 2.0;
            best_accuracy = best_accuracy.max(acc).max(1.0 - acc);
        }
        AttackReport {
            auc,
            reported_auc: auc.max(1.0 - auc),
            best_accuracy,
            tpr_at_10pct_fpr: tpr_at_fpr(&curve, 0.10),
            tpr_at_1pct_fpr: tpr_at_fpr(&curve, 0.01),
            samples_per_side: (member_scores.len(), nonmember_scores.len()),
        }
    }

    /// Builds the report from an [`AttackResult`].
    pub fn from_result(result: &AttackResult) -> Self {
        AttackReport::from_scores(&result.member_scores, &result.nonmember_scores)
    }
}

/// Highest TPR achievable with FPR ≤ `fpr_budget` (ROC is a step function,
/// so this is the max over qualifying points).
fn tpr_at_fpr(curve: &[dinar_metrics::roc::RocPoint], fpr_budget: f64) -> f64 {
    curve
        .iter()
        .filter(|p| p.fpr <= fpr_budget + 1e-12)
        .map(|p| p.tpr)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_attacker_report() {
        let r = AttackReport::from_scores(&[0.9, 0.8, 0.7], &[0.3, 0.2, 0.1]);
        assert!((r.auc - 1.0).abs() < 1e-12);
        assert!((r.best_accuracy - 1.0).abs() < 1e-12);
        assert!((r.tpr_at_1pct_fpr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_attacker_report() {
        let mut rng = dinar_tensor::Rng::seed_from(0);
        let m: Vec<f32> = (0..1000).map(|_| rng.uniform()).collect();
        let n: Vec<f32> = (0..1000).map(|_| rng.uniform()).collect();
        let r = AttackReport::from_scores(&m, &n);
        assert!((r.auc - 0.5).abs() < 0.05);
        assert!(r.best_accuracy < 0.58);
        // At 1% FPR a random attacker identifies ~1% of members.
        assert!(r.tpr_at_1pct_fpr < 0.05);
    }

    #[test]
    fn tpr_at_fpr_is_monotone_in_budget() {
        let mut rng = dinar_tensor::Rng::seed_from(1);
        let m: Vec<f32> = (0..300).map(|_| rng.normal_with(1.0, 1.0)).collect();
        let n: Vec<f32> = (0..300).map(|_| rng.normal()).collect();
        let r = AttackReport::from_scores(&m, &n);
        assert!(r.tpr_at_1pct_fpr <= r.tpr_at_10pct_fpr + 1e-12);
        assert!(r.tpr_at_10pct_fpr <= 1.0);
        assert_eq!(r.samples_per_side, (300, 300));
    }

    #[test]
    fn inverted_scores_still_report_above_half() {
        let r = AttackReport::from_scores(&[0.1, 0.2], &[0.8, 0.9]);
        assert!(r.auc < 0.1);
        assert!((r.reported_auc - 1.0).abs() < 1e-12);
        assert!((r.best_accuracy - 1.0).abs() < 1e-12);
    }
}

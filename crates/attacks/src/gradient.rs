//! White-box gradient-norm membership inference (Nasr et al. style).
//!
//! In white-box FL the attacker holds the full model parameters, so it can
//! do more than query predictions: for each candidate sample it computes the
//! gradient of the loss with respect to the model parameters. Members —
//! samples the model was optimized on — produce markedly *smaller* gradients
//! than unseen samples, so `-‖∇θ ℓ(x, y)‖` scores membership.
//!
//! This attacker is also the white-box counterpart of the paper's §3
//! layer-level analysis: [`GradientNormAttack::per_layer`] restricts the
//! norm to one trainable layer, letting experiments measure how much each
//! layer's gradients alone reveal (Fig. 4a's operational form).

use crate::{MembershipAttack, Result};
use dinar_data::Dataset;
use dinar_nn::loss::CrossEntropyLoss;
use dinar_nn::{Model, ModelParams, ParamView};

/// Gradient-norm membership attack.
#[derive(Debug, Clone, Copy, Default)]
pub struct GradientNormAttack {
    /// Restrict the norm to one trainable layer (`None` = whole model).
    layer: Option<usize>,
}

impl GradientNormAttack {
    /// Whole-model gradient-norm attack.
    pub fn new() -> Self {
        GradientNormAttack { layer: None }
    }

    /// Attack reading only the gradients of trainable layer `layer`.
    pub fn per_layer(layer: usize) -> Self {
        GradientNormAttack { layer: Some(layer) }
    }
}

impl MembershipAttack for GradientNormAttack {
    fn name(&self) -> &'static str {
        "gradient_norm"
    }

    fn score(
        &mut self,
        target: &ModelParams,
        template: &mut Model,
        samples: &Dataset,
    ) -> Result<Vec<f32>> {
        template.set_params(target)?;
        let loss_fn = CrossEntropyLoss;
        let mut scores = Vec::with_capacity(samples.len());
        for i in 0..samples.len() {
            let batch = samples.batch(&[i])?;
            let logits = template.forward(&batch.features, true)?;
            let (_, grad) = loss_fn.loss_and_grad(&logits, &batch.labels)?;
            template.zero_grad();
            template.backward(&grad)?;
            let grads = template.layer_gradients();
            let norm = match self.layer {
                // A single-layer view reduces exactly like the old
                // per-tensor sum (see `ParamView::norm_and_count`), so
                // per-layer scores are bit-unchanged.
                Some(l) => grads
                    .get(l)
                    .map(|layer| ParamView::of_layer(layer).l2_norm())
                    .unwrap_or(0.0),
                // The whole-model score deliberately keeps its flat
                // association (one f64 sum across all tensors), which
                // differs from the nested per-layer reduction.
                None => {
                    let norm_sq: f64 = grads
                        .iter()
                        .flat_map(|layer| &layer.tensors)
                        .map(|t| {
                            let n = t.norm_l2() as f64;
                            n * n
                        })
                        .sum();
                    norm_sq.sqrt() as f32
                }
            };
            // Members have small gradients: negate so higher = member.
            scores.push(-norm);
        }
        template.zero_grad();
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_attack;
    use dinar_nn::models::{self, Activation};
    use dinar_nn::optim::{Optimizer, Sgd};
    use dinar_tensor::{Rng, Tensor};

    fn noisy_dataset(n: usize, rng: &mut Rng) -> Dataset {
        let mut x = Tensor::zeros(&[n, 8]);
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 4;
            for j in 0..8 {
                let center = if j % 4 == class { 1.0 } else { 0.0 };
                x.set(&[i, j], rng.normal_with(center, 2.0)).unwrap();
            }
            labels.push(class);
        }
        Dataset::new(x, labels, &[8], 4).unwrap()
    }

    fn overfit() -> (ModelParams, Model, Dataset, Dataset) {
        let mut rng = Rng::seed_from(0);
        let members = noisy_dataset(40, &mut rng);
        let nonmembers = noisy_dataset(40, &mut rng);
        let mut model = models::mlp(&[8, 48, 48, 4], Activation::ReLU, &mut rng).unwrap();
        let mut opt = Sgd::new(0.1);
        let batch = members.full_batch().unwrap();
        for _ in 0..250 {
            let logits = model.forward(&batch.features, true).unwrap();
            let (_, grad) = CrossEntropyLoss
                .loss_and_grad(&logits, &batch.labels)
                .unwrap();
            model.zero_grad();
            model.backward(&grad).unwrap();
            opt.step(&mut model).unwrap();
        }
        let params = model.params();
        let template = models::mlp(&[8, 48, 48, 4], Activation::ReLU, &mut rng).unwrap();
        (params, template, members, nonmembers)
    }

    #[test]
    fn whole_model_gradient_attack_succeeds_on_overfit_model() {
        let (params, mut template, members, nonmembers) = overfit();
        let result = evaluate_attack(
            &mut GradientNormAttack::new(),
            &params,
            &mut template,
            &members,
            &nonmembers,
        )
        .unwrap();
        assert!(result.auc > 0.8, "white-box AUC {} too low", result.auc);
    }

    #[test]
    fn per_layer_attack_is_weaker_than_whole_model_but_above_chance() {
        let (params, mut template, members, nonmembers) = overfit();
        let whole = evaluate_attack(
            &mut GradientNormAttack::new(),
            &params,
            &mut template,
            &members,
            &nonmembers,
        )
        .unwrap();
        for layer in 0..3 {
            let result = evaluate_attack(
                &mut GradientNormAttack::per_layer(layer),
                &params,
                &mut template,
                &members,
                &nonmembers,
            )
            .unwrap();
            assert!(
                result.auc > 0.6,
                "layer {layer} AUC {} should carry signal",
                result.auc
            );
            assert!(result.auc <= whole.auc + 0.05);
        }
    }

    #[test]
    fn invalid_layer_scores_zero_auc_half() {
        let (params, mut template, members, nonmembers) = overfit();
        // Out-of-range layer: all scores 0 -> AUC exactly 0.5.
        let result = evaluate_attack(
            &mut GradientNormAttack::per_layer(99),
            &params,
            &mut template,
            &members,
            &nonmembers,
        )
        .unwrap();
        assert!((result.raw_auc - 0.5).abs() < 1e-9);
    }
}

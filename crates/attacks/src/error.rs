use dinar_data::DataError;
use dinar_fl::FlError;
use dinar_nn::NnError;
use std::fmt;

/// Error type for attack construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AttackError {
    /// A network operation failed.
    Nn(NnError),
    /// A dataset operation failed.
    Data(DataError),
    /// An FL evaluation helper failed.
    Fl(FlError),
    /// The attack was configured inconsistently.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// The evaluation request was invalid (e.g. empty member set).
    InvalidEvaluation {
        /// Human-readable description.
        reason: String,
    },
    /// `score` was called on a shadow attack that has not been fitted.
    NotFitted,
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Nn(e) => write!(f, "network error: {e}"),
            AttackError::Data(e) => write!(f, "data error: {e}"),
            AttackError::Fl(e) => write!(f, "fl error: {e}"),
            AttackError::InvalidConfig { reason } => {
                write!(f, "invalid attack configuration: {reason}")
            }
            AttackError::InvalidEvaluation { reason } => {
                write!(f, "invalid attack evaluation: {reason}")
            }
            AttackError::NotFitted => write!(f, "shadow attack used before fitting"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Nn(e) => Some(e),
            AttackError::Data(e) => Some(e),
            AttackError::Fl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for AttackError {
    fn from(e: NnError) -> Self {
        AttackError::Nn(e)
    }
}

impl From<DataError> for AttackError {
    fn from(e: DataError) -> Self {
        AttackError::Data(e)
    }
}

impl From<FlError> for AttackError {
    fn from(e: FlError) -> Self {
        AttackError::Fl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: AttackError = NnError::BackwardBeforeForward { layer: "x" }.into();
        assert!(e.to_string().contains("network error"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(AttackError::NotFitted.to_string().contains("fitting"));
    }
}

//! The Shokri-style shadow-model membership inference attack \[41\].
//!
//! The attacker holds prior-knowledge data drawn from the same distribution
//! as the victims' data (the 50% attacker split of §5.1). It trains several
//! *shadow models* with the target architecture on disjoint chunks of that
//! data; for each shadow it knows exactly which samples were members. The
//! shadows' predictions on members vs non-members form a labelled training
//! set for an *attack classifier* over confidence-vector features
//! ([`crate::features`]). Scoring a real target model then requires only
//! black-box predictions — exactly the capability a curious FL server or
//! client has over exchanged model parameters.

use crate::features::{extract, NUM_FEATURES};
use crate::{AttackError, MembershipAttack, Result};
use dinar_data::Dataset;
use dinar_nn::loss::{softmax_rows, CrossEntropyLoss};
use dinar_nn::models::{self, Activation};
use dinar_nn::optim::{self, Optimizer, Sgd};
use dinar_nn::{Model, ModelParams};
use dinar_tensor::{Rng, Tensor};

/// Shadow-attack hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowConfig {
    /// Number of shadow models (the more, the more attack training data).
    pub num_shadows: usize,
    /// Training epochs per shadow model — should mimic the victims'
    /// training budget so shadows overfit similarly.
    pub shadow_epochs: usize,
    /// Shadow mini-batch size.
    pub batch_size: usize,
    /// Shadow learning rate.
    pub lr: f32,
    /// Shadow optimizer name (see [`optim::by_name`]); should mimic the
    /// victims' optimizer so shadows overfit the same way.
    pub optimizer: &'static str,
    /// Epochs for the attack classifier.
    pub attack_epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        ShadowConfig {
            num_shadows: 4,
            shadow_epochs: 30,
            batch_size: 32,
            lr: 0.05,
            optimizer: "sgd",
            attack_epochs: 120,
            seed: 0x5A5A,
        }
    }
}

/// The fitted shadow attack.
///
/// # Example
///
/// See the crate-level integration tests; fitting requires an attacker
/// dataset and the target model architecture.
#[derive(Debug)]
pub struct ShadowAttack {
    config: ShadowConfig,
    attack_model: Option<Model>,
}

impl ShadowAttack {
    /// Creates an unfitted attack.
    pub fn new(config: ShadowConfig) -> Self {
        ShadowAttack {
            config,
            attack_model: None,
        }
    }

    /// `true` once [`ShadowAttack::fit`] has succeeded.
    pub fn is_fitted(&self) -> bool {
        self.attack_model.is_some()
    }

    /// Fits the attack: trains shadow models on the attacker's data and the
    /// attack classifier on their member/non-member predictions.
    ///
    /// `model_fn` must build the target architecture (the attacker knows it
    /// in white-box FL).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] if the attacker data cannot
    /// feed the requested number of shadows, and propagates training errors.
    pub fn fit(
        &mut self,
        attacker_data: &Dataset,
        model_fn: impl Fn(&mut Rng) -> dinar_nn::Result<Model>,
    ) -> Result<()> {
        let cfg = self.config;
        if cfg.num_shadows == 0 {
            return Err(AttackError::InvalidConfig {
                reason: "need at least one shadow model".into(),
            });
        }
        let chunk = attacker_data.len() / cfg.num_shadows;
        if chunk < 8 {
            return Err(AttackError::InvalidConfig {
                reason: format!(
                    "attacker data of {} cannot feed {} shadows (chunk {chunk} < 8)",
                    attacker_data.len(),
                    cfg.num_shadows
                ),
            });
        }
        let mut rng = Rng::seed_from(cfg.seed);
        let loss_fn = CrossEntropyLoss;

        let mut feature_rows: Vec<Tensor> = Vec::new();
        let mut labels: Vec<usize> = Vec::new();

        for s in 0..cfg.num_shadows {
            let indices: Vec<usize> = (s * chunk..(s + 1) * chunk).collect();
            let shard = attacker_data.subset(&indices)?;
            let (in_set, out_set) = shard.split_fraction(0.5, &mut rng)?;

            // Train the shadow on its member half.
            let mut shadow = model_fn(&mut rng)?;
            let mut opt: Box<dyn Optimizer> =
                optim::by_name(cfg.optimizer, cfg.lr).ok_or_else(|| {
                    AttackError::InvalidConfig {
                        reason: format!("unknown shadow optimizer `{}`", cfg.optimizer),
                    }
                })?;
            for _ in 0..cfg.shadow_epochs {
                for batch_idx in in_set.batch_indices(cfg.batch_size, &mut rng) {
                    let batch = in_set.batch(&batch_idx)?;
                    let logits = shadow.forward(&batch.features, true)?;
                    let (_, grad) = loss_fn.loss_and_grad(&logits, &batch.labels)?;
                    shadow.zero_grad();
                    shadow.backward(&grad)?;
                    opt.step(&mut shadow)?;
                }
            }
            // Label the shadow's behaviour: members -> 1, non-members -> 0.
            let shadow_params = shadow.params();
            let f_in = extract(&shadow_params, &mut shadow, &in_set)?;
            let f_out = extract(&shadow_params, &mut shadow, &out_set)?;
            labels.extend(std::iter::repeat(1).take(in_set.len()));
            labels.extend(std::iter::repeat(0).take(out_set.len()));
            feature_rows.push(f_in);
            feature_rows.push(f_out);
        }

        let refs: Vec<&Tensor> = feature_rows.iter().collect();
        let features = Tensor::vstack(&refs).map_err(dinar_nn::NnError::from)?;

        // Train the attack classifier (member vs non-member).
        let mut attack_model =
            models::mlp(&[NUM_FEATURES, 24, 2], Activation::ReLU, &mut rng)?;
        let mut opt = Sgd::new(0.1);
        let attack_ds = Dataset::new(features, labels, &[NUM_FEATURES], 2)?;
        for _ in 0..cfg.attack_epochs {
            for batch_idx in attack_ds.batch_indices(64, &mut rng) {
                let batch = attack_ds.batch(&batch_idx)?;
                let logits = attack_model.forward(&batch.features, true)?;
                let (_, grad) = loss_fn.loss_and_grad(&logits, &batch.labels)?;
                attack_model.zero_grad();
                attack_model.backward(&grad)?;
                opt.step(&mut attack_model)?;
            }
        }
        self.attack_model = Some(attack_model);
        Ok(())
    }
}

impl MembershipAttack for ShadowAttack {
    fn name(&self) -> &'static str {
        "shadow"
    }

    fn score(
        &mut self,
        target: &ModelParams,
        template: &mut Model,
        samples: &Dataset,
    ) -> Result<Vec<f32>> {
        let attack_model = self.attack_model.as_mut().ok_or(AttackError::NotFitted)?;
        let features = extract(target, template, samples)?;
        let logits = attack_model.forward(&features, false)?;
        let probs = softmax_rows(&logits)?;
        // P(member) = probability of class 1.
        Ok((0..samples.len())
            .map(|i| probs.get(&[i, 1]).expect("valid index"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_attack;

    /// A hard 4-class task where models memorize.
    fn noisy_dataset(n: usize, rng: &mut Rng) -> Dataset {
        let mut x = Tensor::zeros(&[n, 8]);
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 4;
            for j in 0..8 {
                let center = if j % 4 == class { 1.0 } else { 0.0 };
                x.set(&[i, j], rng.normal_with(center, 2.0)).unwrap();
            }
            labels.push(class);
        }
        Dataset::new(x, labels, &[8], 4).unwrap()
    }

    fn arch(rng: &mut Rng) -> dinar_nn::Result<Model> {
        models::mlp(&[8, 64, 4], Activation::ReLU, rng)
    }

    #[test]
    fn shadow_attack_detects_membership() {
        let mut rng = Rng::seed_from(1);
        let attacker_data = noisy_dataset(240, &mut rng);
        let members = noisy_dataset(40, &mut rng);
        let nonmembers = noisy_dataset(40, &mut rng);

        // Train a victim that overfits its member set.
        let mut victim = arch(&mut rng).unwrap();
        let mut opt = Sgd::new(0.05);
        let batch = members.full_batch().unwrap();
        for _ in 0..200 {
            let logits = victim.forward(&batch.features, true).unwrap();
            let (_, grad) = CrossEntropyLoss
                .loss_and_grad(&logits, &batch.labels)
                .unwrap();
            victim.zero_grad();
            victim.backward(&grad).unwrap();
            opt.step(&mut victim).unwrap();
        }
        let target = victim.params();

        let mut attack = ShadowAttack::new(ShadowConfig {
            num_shadows: 3,
            shadow_epochs: 60,
            ..ShadowConfig::default()
        });
        attack.fit(&attacker_data, arch).unwrap();
        assert!(attack.is_fitted());

        let mut template = arch(&mut rng).unwrap();
        let result =
            evaluate_attack(&mut attack, &target, &mut template, &members, &nonmembers).unwrap();
        assert!(result.auc > 0.7, "shadow attack AUC {} too low", result.auc);
    }

    #[test]
    fn unfitted_attack_errors() {
        let mut rng = Rng::seed_from(2);
        let ds = noisy_dataset(16, &mut rng);
        let model = arch(&mut rng).unwrap();
        let params = model.params();
        let mut template = arch(&mut rng).unwrap();
        let mut attack = ShadowAttack::new(ShadowConfig::default());
        assert!(matches!(
            attack.score(&params, &mut template, &ds),
            Err(AttackError::NotFitted)
        ));
    }

    #[test]
    fn fit_rejects_starved_shadows() {
        let mut rng = Rng::seed_from(3);
        let tiny = noisy_dataset(16, &mut rng);
        let mut attack = ShadowAttack::new(ShadowConfig {
            num_shadows: 4,
            ..ShadowConfig::default()
        });
        assert!(matches!(
            attack.fit(&tiny, arch),
            Err(AttackError::InvalidConfig { .. })
        ));
    }
}

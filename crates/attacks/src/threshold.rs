//! Threshold attacks: score membership directly from the target model's
//! per-sample behaviour (Yeom et al. style).

use crate::{MembershipAttack, Result};
use dinar_data::Dataset;
use dinar_fl::eval::{confidences_of_params, losses_of_params};
use dinar_nn::{Model, ModelParams};

/// Loss-threshold attack: members were fit by the model, so their loss is
/// lower; the membership score is `-loss`.
///
/// Because the AUC integrates over all thresholds, no explicit threshold is
/// chosen — the score ordering is the attack.
#[derive(Debug, Clone, Copy, Default)]
pub struct LossThresholdAttack;

impl MembershipAttack for LossThresholdAttack {
    fn name(&self) -> &'static str {
        "loss_threshold"
    }

    fn score(
        &mut self,
        target: &ModelParams,
        template: &mut Model,
        samples: &Dataset,
    ) -> Result<Vec<f32>> {
        let losses = losses_of_params(target, template, samples)?;
        Ok(losses.into_iter().map(|l| -l).collect())
    }
}

/// Confidence-threshold attack: the maximum softmax probability as the
/// membership score (members are predicted more confidently).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConfidenceThresholdAttack;

impl MembershipAttack for ConfidenceThresholdAttack {
    fn name(&self) -> &'static str {
        "confidence_threshold"
    }

    fn score(
        &mut self,
        target: &ModelParams,
        template: &mut Model,
        samples: &Dataset,
    ) -> Result<Vec<f32>> {
        let confs = confidences_of_params(target, template, samples)?;
        let classes = samples.num_classes();
        let p = confs.as_slice();
        Ok((0..samples.len())
            .map(|i| {
                p[i * classes..(i + 1) * classes]
                    .iter()
                    .copied()
                    .fold(f32::NEG_INFINITY, f32::max)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_attack;
    use dinar_nn::loss::CrossEntropyLoss;
    use dinar_nn::models::{self, Activation};
    use dinar_nn::optim::{Optimizer, Sgd};
    use dinar_tensor::{Rng, Tensor};

    /// Builds an overfit model plus member and non-member datasets.
    fn overfit_setup() -> (ModelParams, Model, Dataset, Dataset) {
        let mut rng = Rng::seed_from(0);
        let n = 48;
        // Hard task (high noise) + small data + many epochs => memorization.
        let make = |rng: &mut Rng| {
            let mut x = Tensor::zeros(&[n, 8]);
            let mut labels = Vec::new();
            for i in 0..n {
                let class = i % 4;
                for j in 0..8 {
                    let center = if j % 4 == class { 1.0 } else { 0.0 };
                    x.set(&[i, j], rng.normal_with(center, 2.0)).unwrap();
                }
                labels.push(class);
            }
            Dataset::new(x, labels, &[8], 4).unwrap()
        };
        let members = make(&mut rng);
        let nonmembers = make(&mut rng);
        let mut model = models::mlp(&[8, 64, 64, 4], Activation::ReLU, &mut rng).unwrap();
        let mut opt = Sgd::new(0.1);
        let batch = members.full_batch().unwrap();
        for _ in 0..300 {
            let logits = model.forward(&batch.features, true).unwrap();
            let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &batch.labels).unwrap();
            model.zero_grad();
            model.backward(&grad).unwrap();
            opt.step(&mut model).unwrap();
        }
        let params = model.params();
        let template = models::mlp(&[8, 64, 64, 4], Activation::ReLU, &mut rng).unwrap();
        (params, template, members, nonmembers)
    }

    #[test]
    fn loss_attack_beats_random_on_overfit_model() {
        let (params, mut template, members, nonmembers) = overfit_setup();
        let result = evaluate_attack(
            &mut LossThresholdAttack,
            &params,
            &mut template,
            &members,
            &nonmembers,
        )
        .unwrap();
        assert!(result.auc > 0.8, "attack AUC {} too low", result.auc);
    }

    #[test]
    fn confidence_attack_beats_random_on_overfit_model() {
        let (params, mut template, members, nonmembers) = overfit_setup();
        let result = evaluate_attack(
            &mut ConfidenceThresholdAttack,
            &params,
            &mut template,
            &members,
            &nonmembers,
        )
        .unwrap();
        assert!(result.auc > 0.7, "attack AUC {} too low", result.auc);
    }

    #[test]
    fn attack_fails_on_untrained_model() {
        let (_, mut template, members, nonmembers) = overfit_setup();
        // Fresh random parameters: no membership signal.
        let mut rng = Rng::seed_from(99);
        let fresh = models::mlp(&[8, 64, 64, 4], Activation::ReLU, &mut rng)
            .unwrap()
            .params();
        let result = evaluate_attack(
            &mut LossThresholdAttack,
            &fresh,
            &mut template,
            &members,
            &nonmembers,
        )
        .unwrap();
        assert!(
            result.auc < 0.65,
            "no-signal AUC {} should be near 0.5",
            result.auc
        );
    }

    #[test]
    fn empty_evaluation_rejected() {
        let (params, mut template, members, _) = overfit_setup();
        let empty = members.subset(&[]).unwrap();
        assert!(evaluate_attack(
            &mut LossThresholdAttack,
            &params,
            &mut template,
            &members,
            &empty,
        )
        .is_err());
    }
}

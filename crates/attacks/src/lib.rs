//! # dinar-attacks
//!
//! Membership inference attacks (MIAs) against FL models, following the
//! paper's threat model (§2.2) and attack instantiation (§5.5, after Shokri
//! et al. \[41\]).
//!
//! Two attackers are provided behind the common [`MembershipAttack`] trait:
//!
//! * [`threshold::LossThresholdAttack`] — the classic generalization-gap
//!   attack: members have lower loss, so `-loss` scores membership. Needs no
//!   training; used as a fast cross-check and for the Fig. 3 loss
//!   distributions.
//! * [`shadow::ShadowAttack`] — the Shokri-style attack the paper runs: the
//!   attacker trains *shadow models* on its own prior-knowledge data (the
//!   50% attacker split of §5.1), labels their outputs as member/non-member,
//!   and fits an attack classifier on confidence-vector features. Scoring a
//!   target model then requires only black-box predictions.
//!
//! Attack quality is reported as **attack AUC** via [`evaluate_attack`],
//! where 50% (random guessing) is the optimum a defense can force.
//!
//! The attacker can sit on the server side (scoring an individual client
//! upload) or the client side (scoring the global model) — both are just
//! parameter sets passed to [`MembershipAttack::score`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod features;
pub mod gradient;
pub mod inversion;
pub mod repair;
pub mod report;
pub mod shadow;
pub mod threshold;

pub use error::AttackError;

use dinar_data::Dataset;
use dinar_nn::{Model, ModelParams};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AttackError>;

/// A membership inference attack: assigns each sample a score where higher
/// means "more likely a member of the target model's training set".
pub trait MembershipAttack: std::fmt::Debug {
    /// Attack name for reports.
    fn name(&self) -> &'static str;

    /// Scores every sample in `samples` against the target model
    /// (`target` installed into the architecture-matched `template`).
    ///
    /// # Errors
    ///
    /// Propagates model-evaluation errors.
    fn score(
        &mut self,
        target: &ModelParams,
        template: &mut Model,
        samples: &Dataset,
    ) -> Result<Vec<f32>>;
}

/// The outcome of running an attack against one target model.
#[derive(Debug, Clone)]
pub struct AttackResult {
    /// Raw AUC in `[0, 1]` (membership scores of members vs non-members).
    pub raw_auc: f64,
    /// The paper's reported AUC in `[0.5, 1]` (an attacker below 0.5 would
    /// invert its decision).
    pub auc: f64,
    /// Scores assigned to the true members.
    pub member_scores: Vec<f32>,
    /// Scores assigned to the true non-members.
    pub nonmember_scores: Vec<f32>,
}

/// Runs an attack against a target model and computes the attack AUC over a
/// balanced member/non-member evaluation.
///
/// `members` must be data the target trained on; `nonmembers` data it never
/// saw. The two sets are truncated to equal size so the AUC is balanced.
///
/// # Errors
///
/// Propagates attack and evaluation errors.
pub fn evaluate_attack(
    attack: &mut dyn MembershipAttack,
    target: &ModelParams,
    template: &mut Model,
    members: &Dataset,
    nonmembers: &Dataset,
) -> Result<AttackResult> {
    let n = members.len().min(nonmembers.len());
    if n == 0 {
        return Err(AttackError::InvalidEvaluation {
            reason: "need at least one member and one non-member".into(),
        });
    }
    let member_eval = members.subset(&(0..n).collect::<Vec<_>>())?;
    let nonmember_eval = nonmembers.subset(&(0..n).collect::<Vec<_>>())?;
    let member_scores = attack.score(target, template, &member_eval)?;
    let nonmember_scores = attack.score(target, template, &nonmember_eval)?;
    let raw_auc = dinar_metrics::roc::attack_auc(&member_scores, &nonmember_scores);
    Ok(AttackResult {
        raw_auc,
        auc: raw_auc.max(1.0 - raw_auc),
        member_scores,
        nonmember_scores,
    })
}

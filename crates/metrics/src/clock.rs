//! Injectable time sources for the whole stack.
//!
//! Lint rules L002/L007 ban ambient wall-clock reads (`Instant::now`) in the
//! deterministic crates: a trace, span, cost sample or transport that reads
//! the real clock cannot be replayed bit-identically. All timing therefore
//! goes through the [`Clock`] trait — production code uses [`WallClock`]
//! (the one sanctioned wall-clock read in the workspace), while tests and
//! replay harnesses inject a [`ManualClock`] they advance explicitly.
//!
//! This module originated in `dinar-fl` and then lived in `dinar-telemetry`;
//! it sits here, at the bottom of the dependency stack, so the cost
//! accounting in [`crate::cost`], the telemetry span layer and the FL
//! runtime all share one clock abstraction (`dinar-telemetry` and
//! `dinar-fl` re-export it).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic time source measured from a fixed epoch.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Time elapsed since the clock's epoch.
    fn elapsed(&self) -> Duration;
}

/// The real monotonic clock, anchored at construction time.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Creates a wall clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock {
            // lint: allow(L002, the single sanctioned wall-clock source; inject ManualClock for determinism)
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn elapsed(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A deterministic clock that only moves when [`advance`](ManualClock::advance)
/// is called — timestamps become part of the test's inputs instead of
/// ambient state.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// Creates a manual clock at `0`.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `by`.
    pub fn advance(&self, by: Duration) {
        let us = u64::try_from(by.as_micros()).unwrap_or(u64::MAX);
        self.micros.fetch_add(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn elapsed(&self) -> Duration {
        Duration::from_micros(self.micros.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.elapsed();
        let b = clock.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let clock = ManualClock::new();
        assert_eq!(clock.elapsed(), Duration::ZERO);
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.elapsed(), Duration::from_millis(250));
        assert_eq!(clock.elapsed(), Duration::from_millis(250));
        clock.advance(Duration::from_micros(3));
        assert_eq!(clock.elapsed(), Duration::from_micros(250_003));
    }

    #[test]
    fn clocks_are_object_safe_and_shareable() {
        let clock: std::sync::Arc<dyn Clock> = std::sync::Arc::new(ManualClock::new());
        let c2 = clock.clone();
        let h = std::thread::spawn(move || c2.elapsed());
        assert_eq!(h.join().expect("clock thread"), Duration::ZERO);
    }
}

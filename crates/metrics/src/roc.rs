//! ROC curves and attack AUC.
//!
//! The attack AUC (Appendix A of the paper) is the probability that the
//! attacker's score ranks a random member above a random non-member, i.e.
//! the Mann–Whitney U statistic normalized to `[0, 1]`. It integrates over
//! every possible decision threshold, which is why the paper prefers it to
//! accuracy at a single threshold.


/// Computes the AUC of a scoring attacker.
///
/// `member_scores` are the attack scores of true members, `nonmember_scores`
/// those of true non-members; higher scores must mean "more likely member".
/// Ties contribute ½. Returns a value in `[0, 1]`; an uninformative attacker
/// scores 0.5.
///
/// Runs in `O((m + n) log(m + n))` via rank summation.
///
/// # Panics
///
/// Panics if either slice is empty or contains NaN.
pub fn attack_auc(member_scores: &[f32], nonmember_scores: &[f32]) -> f64 {
    assert!(
        !member_scores.is_empty() && !nonmember_scores.is_empty(),
        "attack_auc requires non-empty score sets"
    );
    assert!(
        member_scores
            .iter()
            .chain(nonmember_scores)
            .all(|s| !s.is_nan()),
        "attack_auc scores must not be NaN"
    );
    // Pool scores, sort, assign mid-ranks to ties, sum member ranks.
    let m = member_scores.len();
    let n = nonmember_scores.len();
    let mut pooled: Vec<(f32, bool)> = member_scores
        .iter()
        .map(|&s| (s, true))
        .chain(nonmember_scores.iter().map(|&s| (s, false)))
        .collect();
    pooled.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut rank_sum_members = 0.0f64;
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i;
        while j + 1 < pooled.len() && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        // Ranks i+1 ..= j+1 share the mid-rank.
        let mid_rank = (i + 1 + j + 1) as f64 / 2.0;
        for item in &pooled[i..=j] {
            if item.1 {
                rank_sum_members += mid_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_members - (m as f64 * (m as f64 + 1.0)) / 2.0;
    u / (m as f64 * n as f64)
}

/// The paper reports attack AUC in `[50%, 100%]`: an attacker that scores
/// *below* 0.5 is as informative as its inversion, so the reported value is
/// `max(auc, 1 - auc)`.
pub fn reported_attack_auc(member_scores: &[f32], nonmember_scores: &[f32]) -> f64 {
    let auc = attack_auc(member_scores, nonmember_scores);
    auc.max(1.0 - auc)
}

/// A point on the ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate.
    pub fpr: f64,
    /// True-positive rate.
    pub tpr: f64,
    /// The threshold producing this point.
    pub threshold: f32,
}

/// Full ROC curve (for plots and threshold selection).
///
/// # Panics
///
/// Same conditions as [`attack_auc`].
pub fn roc_curve(member_scores: &[f32], nonmember_scores: &[f32]) -> Vec<RocPoint> {
    assert!(
        !member_scores.is_empty() && !nonmember_scores.is_empty(),
        "roc_curve requires non-empty score sets"
    );
    let mut pooled: Vec<(f32, bool)> = member_scores
        .iter()
        .map(|&s| (s, true))
        .chain(nonmember_scores.iter().map(|&s| (s, false)))
        .collect();
    // Descending scores: lowering the threshold adds points.
    pooled.sort_by(|a, b| b.0.total_cmp(&a.0));
    let m = member_scores.len() as f64;
    let n = nonmember_scores.len() as f64;
    let mut curve = vec![RocPoint {
        fpr: 0.0,
        tpr: 0.0,
        threshold: f32::INFINITY,
    }];
    let (mut tp, mut fp) = (0.0f64, 0.0f64);
    let mut i = 0;
    while i < pooled.len() {
        let threshold = pooled[i].0;
        while i < pooled.len() && pooled[i].0 == threshold {
            if pooled[i].1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        curve.push(RocPoint {
            fpr: fp / n,
            tpr: tp / m,
            threshold,
        });
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_one() {
        let auc = attack_auc(&[0.9, 0.8, 0.7], &[0.3, 0.2, 0.1]);
        assert!((auc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_separation_gives_zero() {
        let auc = attack_auc(&[0.1, 0.2], &[0.8, 0.9]);
        assert!(auc.abs() < 1e-12);
        assert!((reported_attack_auc(&[0.1, 0.2], &[0.8, 0.9]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_scores_give_half() {
        let auc = attack_auc(&[0.5; 10], &[0.5; 7]);
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_scores_near_half() {
        let mut rng = dinar_tensor::Rng::seed_from(0);
        let members: Vec<f32> = (0..2000).map(|_| rng.uniform()).collect();
        let nonmembers: Vec<f32> = (0..2000).map(|_| rng.uniform()).collect();
        let auc = attack_auc(&members, &nonmembers);
        assert!((auc - 0.5).abs() < 0.03, "auc={auc}");
    }

    #[test]
    fn auc_matches_brute_force_with_ties() {
        let members = [0.3f32, 0.5, 0.5, 0.9];
        let nonmembers = [0.1f32, 0.5, 0.7];
        let mut wins = 0.0f64;
        for &a in &members {
            for &b in &nonmembers {
                if a > b {
                    wins += 1.0;
                } else if a == b {
                    wins += 0.5;
                }
            }
        }
        let brute = wins / (members.len() * nonmembers.len()) as f64;
        let fast = attack_auc(&members, &nonmembers);
        assert!((brute - fast).abs() < 1e-12, "brute={brute} fast={fast}");
    }

    #[test]
    fn roc_curve_is_monotone_and_anchored() {
        let members = [0.9f32, 0.6, 0.55, 0.3];
        let nonmembers = [0.7f32, 0.4, 0.2, 0.1];
        let curve = roc_curve(&members, &nonmembers);
        assert_eq!(curve.first().map(|p| (p.fpr, p.tpr)), Some((0.0, 0.0)));
        let last = curve.last().unwrap();
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
        for pair in curve.windows(2) {
            assert!(pair[1].fpr >= pair[0].fpr);
            assert!(pair[1].tpr >= pair[0].tpr);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_scores_panic() {
        attack_auc(&[], &[0.5]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_panic() {
        attack_auc(&[f32::NAN], &[0.5]);
    }
}

//! Cost accounting: wall-clock time and tensor memory.
//!
//! Backs the Table 3 comparison ("training duration per FL round on client
//! side", "aggregation duration on server side", "GPU memory usage on client
//! side"). Time is read through the sanctioned injectable
//! [`Clock`](crate::clock::Clock) — [`WallClock`] by default, a
//! [`ManualClock`](crate::clock::ManualClock) in replay tests — and memory
//! is the peak of extra live tensor bytes measured through
//! `dinar_tensor::alloc`.

use crate::clock::{Clock, WallClock};
use dinar_tensor::alloc::MemoryScope;
use dinar_tensor::json::{Json, ToJson};
use std::sync::Arc;
use std::time::Duration;

/// A running stopwatch accumulating durations across start/stop cycles.
#[derive(Debug)]
pub struct Stopwatch {
    clock: Arc<dyn Clock>,
    total: Duration,
    started: Option<Duration>,
    laps: u32,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::new()
    }
}

impl Stopwatch {
    /// Creates a stopped stopwatch at zero, timed by a fresh [`WallClock`].
    pub fn new() -> Self {
        Stopwatch::with_clock(Arc::new(WallClock::new()))
    }

    /// Creates a stopped stopwatch at zero timed by `clock` — inject a
    /// [`ManualClock`](crate::clock::ManualClock) for deterministic lap
    /// durations in tests.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Stopwatch {
            clock,
            total: Duration::ZERO,
            started: None,
            laps: 0,
        }
    }

    /// Starts (or restarts) timing. Calling `start` twice without `stop`
    /// restarts the current lap.
    pub fn start(&mut self) {
        self.started = Some(self.clock.elapsed());
    }

    /// Stops timing and accumulates the lap. No-op if not started.
    pub fn stop(&mut self) {
        if let Some(t0) = self.started.take() {
            self.total += self.clock.elapsed().saturating_sub(t0);
            self.laps += 1;
        }
    }

    /// Total accumulated time.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Number of completed laps.
    pub fn laps(&self) -> u32 {
        self.laps
    }

    /// Mean lap duration (zero if no laps completed).
    pub fn mean_lap(&self) -> Duration {
        if self.laps == 0 {
            Duration::ZERO
        } else {
            self.total / self.laps
        }
    }

    /// Times a closure as one lap and returns its output.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        self.start();
        let out = f();
        self.stop();
        out
    }
}

/// A cost sample for one FL configuration: the three Table 3 columns.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostSample {
    /// Mean client-side training duration per FL round, in seconds.
    pub client_train_s: f64,
    /// Mean server-side aggregation duration per round, in seconds.
    pub server_agg_s: f64,
    /// Peak extra tensor memory on the client during a round, in bytes.
    pub client_peak_mem_bytes: u64,
}

impl ToJson for CostSample {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("client_train_s", self.client_train_s.to_json()),
            ("server_agg_s", self.server_agg_s.to_json()),
            ("client_peak_mem_bytes", self.client_peak_mem_bytes.to_json()),
        ])
    }
}

impl CostSample {
    /// Reconstructs a sample from its [`ToJson`] encoding.
    ///
    /// Returns `None` if any of the three fields is missing or has the
    /// wrong type.
    pub fn from_json(value: &Json) -> Option<Self> {
        Some(CostSample {
            client_train_s: value.get("client_train_s").and_then(Json::as_f64)?,
            server_agg_s: value.get("server_agg_s").and_then(Json::as_f64)?,
            client_peak_mem_bytes: value.get("client_peak_mem_bytes").and_then(Json::as_u64)?,
        })
    }

    /// Relative overhead of `self` against a `baseline` sample, as the three
    /// Table 3 percentages (client time, aggregation time, memory).
    ///
    /// A zero baseline component yields 0% for that component.
    pub fn overhead_vs(&self, baseline: &CostSample) -> CostOverhead {
        fn pct(x: f64, base: f64) -> f64 {
            if base <= 0.0 {
                0.0
            } else {
                (x / base - 1.0) * 100.0
            }
        }
        CostOverhead {
            client_train_pct: pct(self.client_train_s, baseline.client_train_s),
            server_agg_pct: pct(self.server_agg_s, baseline.server_agg_s),
            client_mem_pct: pct(
                self.client_peak_mem_bytes as f64,
                baseline.client_peak_mem_bytes as f64,
            ),
        }
    }
}

/// Percentage overheads relative to the undefended FL baseline (Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostOverhead {
    /// Client training-time overhead in percent.
    pub client_train_pct: f64,
    /// Server aggregation-time overhead in percent.
    pub server_agg_pct: f64,
    /// Client memory overhead in percent.
    pub client_mem_pct: f64,
}

/// Measures a closure's wall-clock time and peak extra tensor memory,
/// timing through a fresh [`WallClock`].
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Duration, u64) {
    measure_with(&WallClock::new(), f)
}

/// Measures a closure's elapsed time on `clock` and its peak extra tensor
/// memory. Inject a [`ManualClock`](crate::clock::ManualClock) for
/// deterministic timings in tests.
pub fn measure_with<T>(clock: &dyn Clock, f: impl FnOnce() -> T) -> (T, Duration, u64) {
    let scope = MemoryScope::enter();
    let t0 = clock.elapsed();
    let out = f();
    let elapsed = clock.elapsed().saturating_sub(t0);
    (out, elapsed, scope.peak_extra_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_tensor::Tensor;

    #[test]
    fn stopwatch_accumulates_laps() {
        let mut sw = Stopwatch::new();
        sw.time(|| std::thread::sleep(Duration::from_millis(5)));
        sw.time(|| std::thread::sleep(Duration::from_millis(5)));
        assert_eq!(sw.laps(), 2);
        assert!(sw.total() >= Duration::from_millis(10));
        assert!(sw.mean_lap() >= Duration::from_millis(5));
    }

    #[test]
    fn stop_without_start_is_noop() {
        let mut sw = Stopwatch::new();
        sw.stop();
        assert_eq!(sw.laps(), 0);
        assert_eq!(sw.total(), Duration::ZERO);
    }

    #[test]
    fn stopwatch_with_manual_clock_is_deterministic() {
        let clock = Arc::new(crate::clock::ManualClock::new());
        let mut sw = Stopwatch::with_clock(clock.clone());
        sw.start();
        clock.advance(Duration::from_millis(7));
        sw.stop();
        sw.start();
        clock.advance(Duration::from_millis(3));
        sw.stop();
        assert_eq!(sw.laps(), 2);
        assert_eq!(sw.total(), Duration::from_millis(10));
        assert_eq!(sw.mean_lap(), Duration::from_millis(5));
    }

    #[test]
    fn measure_with_manual_clock_is_deterministic() {
        let clock = crate::clock::ManualClock::new();
        let (out, elapsed, _) = measure_with(&clock, || {
            clock.advance(Duration::from_micros(42));
            7
        });
        assert_eq!(out, 7);
        assert_eq!(elapsed, Duration::from_micros(42));
    }

    #[test]
    fn measure_reports_memory() {
        let (_, _, peak) = measure(|| {
            let _t = Tensor::zeros(&[10_000]);
        });
        assert!(peak >= 40_000);
    }

    #[test]
    fn overhead_percentages() {
        let base = CostSample {
            client_train_s: 1.0,
            server_agg_s: 0.1,
            client_peak_mem_bytes: 1000,
        };
        let defended = CostSample {
            client_train_s: 1.35,
            server_agg_s: 3.1,
            client_peak_mem_bytes: 3570,
        };
        let o = defended.overhead_vs(&base);
        assert!((o.client_train_pct - 35.0).abs() < 1e-9);
        assert!((o.server_agg_pct - 3000.0).abs() < 1e-9);
        assert!((o.client_mem_pct - 257.0).abs() < 1e-9);
    }

    #[test]
    fn zero_baseline_overhead_is_zero() {
        let base = CostSample::default();
        let x = CostSample {
            client_train_s: 5.0,
            server_agg_s: 5.0,
            client_peak_mem_bytes: 5,
        };
        let o = x.overhead_vs(&base);
        assert_eq!(o.client_train_pct, 0.0);
        assert_eq!(o.client_mem_pct, 0.0);
    }
}

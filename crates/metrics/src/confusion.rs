//! Confusion matrices and per-class accuracy.
//!
//! The paper reports overall accuracy; per-class views matter in the
//! non-IID experiments (Fig. 8), where skewed client shards produce models
//! that are accurate only on their majority classes.


/// A `classes × classes` confusion matrix (`rows = truth`, `cols =
/// prediction`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Builds a matrix from parallel truth/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or contain out-of-range labels.
    pub fn from_pairs(truth: &[usize], predicted: &[usize], classes: usize) -> Self {
        assert_eq!(truth.len(), predicted.len(), "length mismatch");
        let mut m = ConfusionMatrix::new(classes);
        for (&t, &p) in truth.iter().zip(predicted) {
            m.record(t, p);
        }
        m
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.classes && predicted < self.classes, "label out of range");
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count at `(truth, predicted)`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.classes + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 if empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (`None` for classes with no observations).
    pub fn per_class_recall(&self) -> Vec<Option<f64>> {
        (0..self.classes)
            .map(|c| {
                let row: u64 = (0..self.classes).map(|p| self.count(c, p)).sum();
                (row > 0).then(|| self.count(c, c) as f64 / row as f64)
            })
            .collect()
    }

    /// Balanced accuracy: the mean recall over classes that appear.
    pub fn balanced_accuracy(&self) -> f64 {
        let recalls: Vec<f64> = self.per_class_recall().into_iter().flatten().collect();
        if recalls.is_empty() {
            0.0
        } else {
            recalls.iter().sum::<f64>() / recalls.len() as f64
        }
    }

    /// Merges another matrix into this one (e.g. across FL clients).
    ///
    /// # Panics
    ///
    /// Panics if class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.classes, other.classes, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_and_recall() {
        // truth:     0 0 1 1 1 2
        // predicted: 0 1 1 1 0 2
        let m = ConfusionMatrix::from_pairs(&[0, 0, 1, 1, 1, 2], &[0, 1, 1, 1, 0, 2], 3);
        assert_eq!(m.total(), 6);
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        let recalls = m.per_class_recall();
        assert_eq!(recalls[0], Some(0.5));
        assert_eq!(recalls[1], Some(2.0 / 3.0));
        assert_eq!(recalls[2], Some(1.0));
        let balanced = (0.5 + 2.0 / 3.0 + 1.0) / 3.0;
        assert!((m.balanced_accuracy() - balanced).abs() < 1e-12);
    }

    #[test]
    fn unseen_classes_are_none_and_excluded() {
        let m = ConfusionMatrix::from_pairs(&[0, 0], &[0, 0], 3);
        assert_eq!(m.per_class_recall(), vec![Some(1.0), None, None]);
        assert!((m.balanced_accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix::from_pairs(&[0], &[0], 2);
        let b = ConfusionMatrix::from_pairs(&[1], &[0], 2);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.count(1, 0), 1);
        assert!((a.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = ConfusionMatrix::new(4);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.balanced_accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        ConfusionMatrix::new(2).record(0, 2);
    }
}

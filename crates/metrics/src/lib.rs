//! # dinar-metrics
//!
//! Evaluation metrics for the DINAR reproduction, mirroring Appendix A of
//! the paper:
//!
//! * **Attack AUC** ([`roc`]) — the paper's privacy metric: the area under
//!   the ROC curve of the binary member/non-member classifier implementing
//!   the MIA. 50% is the optimum a defense can reach (random attacker);
//!   100% is a perfect attacker.
//! * **Jensen–Shannon divergence over histograms** ([`histogram`]) — the
//!   generalization-gap measure of §3 used to rank layers by privacy
//!   sensitivity (Fig. 1/4).
//! * **Cost tracking** ([`cost`]) — stopwatches and tensor-memory scopes
//!   behind the Table 3 overhead columns, timed through the injectable
//!   [`clock::Clock`].
//! * **Summary statistics** ([`stats`]) — means, standard deviations and
//!   quantiles used across the experiment reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod confusion;
pub mod cost;
pub mod histogram;
pub mod roc;
pub mod stats;

pub use histogram::{js_divergence, Histogram};
pub use roc::attack_auc;

//! Histograms and Jensen–Shannon divergence.
//!
//! The paper's layer-sensitivity analysis (§3, §4.1) computes "the
//! Jensen–Shannon divergence between the gradients of each layer resulting
//! from the predictions of member data samples and non-member data samples".
//! We realize that as the JS divergence between *histograms* of the two
//! gradient populations over a shared binning.


/// A fixed-width histogram over a closed range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi]`. Out-of-range samples clamp into the edge bins, so no
    /// probability mass is lost.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo >= hi`, or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range [{lo}, {hi}]");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Builds a histogram spanning the joint range of two sample sets — the
    /// shared binning required for a meaningful divergence between them.
    ///
    /// Non-finite samples are ignored. If all samples are equal, the range is
    /// widened by ±1 so the histogram stays valid.
    pub fn joint_pair(a: &[f32], b: &[f32], bins: usize) -> (Histogram, Histogram) {
        let finite = a.iter().chain(b).copied().filter(|x| x.is_finite());
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for x in finite {
            lo = lo.min(x as f64);
            hi = hi.max(x as f64);
        }
        if !lo.is_finite() || !hi.is_finite() {
            (lo, hi) = (-1.0, 1.0);
        }
        if lo >= hi {
            lo -= 1.0;
            hi += 1.0;
        }
        let mut ha = Histogram::new(lo, hi, bins);
        let mut hb = Histogram::new(lo, hi, bins);
        ha.extend(a.iter().copied());
        hb.extend(b.iter().copied());
        (ha, hb)
    }

    /// Adds one sample (non-finite samples are ignored).
    pub fn add(&mut self, x: f32) {
        if !x.is_finite() {
            return;
        }
        let bins = self.counts.len();
        let t = ((x as f64 - self.lo) / (self.hi - self.lo) * bins as f64).floor();
        let idx = (t as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f32>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Normalized bin probabilities (all zeros if the histogram is empty).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

/// Jensen–Shannon divergence between two discrete distributions, in nats.
///
/// `JS(P, Q) = ½ KL(P ‖ M) + ½ KL(Q ‖ M)` with `M = ½(P + Q)`. Bounded by
/// `ln 2 ≈ 0.693`; 0 iff the distributions match. Inputs are normalized
/// defensively.
///
/// # Panics
///
/// Panics if the slices have different lengths or both are all-zero.
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share support");
    let sp: f64 = p.iter().sum();
    let sq: f64 = q.iter().sum();
    assert!(sp > 0.0 && sq > 0.0, "distributions must have mass");
    let mut js = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        let pi = pi / sp;
        let qi = qi / sq;
        let mi = 0.5 * (pi + qi);
        if pi > 0.0 {
            js += 0.5 * pi * (pi / mi).ln();
        }
        if qi > 0.0 {
            js += 0.5 * qi * (qi / mi).ln();
        }
    }
    js.max(0.0)
}

/// JS divergence between the histograms of two sample populations over a
/// shared `bins`-bin range — the §3 generalization-gap measure.
pub fn js_divergence_samples(a: &[f32], b: &[f32], bins: usize) -> f64 {
    let (ha, hb) = Histogram::joint_pair(a, b, bins);
    if ha.total() == 0 || hb.total() == 0 {
        return 0.0;
    }
    js_divergence(&ha.probabilities(), &hb.probabilities())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.5, 1.5, 9.99, -5.0, 50.0, f32::NAN]);
        assert_eq!(h.total(), 5); // NaN ignored
        assert_eq!(h.counts()[0], 2); // 0.5 and clamped -5.0
        assert_eq!(h.counts()[9], 2); // 9.99 and clamped 50.0
        assert_eq!(h.counts()[1], 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut h = Histogram::new(-1.0, 1.0, 7);
        h.extend((0..100).map(|i| (i as f32 / 50.0) - 1.0));
        let p: f64 = h.probabilities().iter().sum();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn js_identical_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(js_divergence(&p, &p) < 1e-15);
    }

    #[test]
    fn js_disjoint_is_ln2() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((js_divergence(&p, &q) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn js_is_symmetric() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.3, 0.6];
        assert!((js_divergence(&p, &q) - js_divergence(&q, &p)).abs() < 1e-15);
    }

    #[test]
    fn js_normalizes_unnormalized_input() {
        let p = [7.0, 2.0, 1.0];
        let q = [0.7, 0.2, 0.1];
        assert!(js_divergence(&p, &q) < 1e-15);
    }

    #[test]
    fn sample_js_detects_distribution_shift() {
        let mut rng = dinar_tensor::Rng::seed_from(0);
        let a: Vec<f32> = (0..5000).map(|_| rng.normal()).collect();
        let same: Vec<f32> = (0..5000).map(|_| rng.normal()).collect();
        let shifted: Vec<f32> = (0..5000).map(|_| rng.normal_with(2.0, 1.0)).collect();
        let near = js_divergence_samples(&a, &same, 40);
        let far = js_divergence_samples(&a, &shifted, 40);
        assert!(near < 0.02, "near={near}");
        assert!(far > 0.2, "far={far}");
    }

    #[test]
    fn joint_pair_handles_constant_samples() {
        let (ha, hb) = Histogram::joint_pair(&[1.0; 5], &[1.0; 3], 4);
        assert_eq!(ha.total(), 5);
        assert_eq!(hb.total(), 3);
        assert!(js_divergence(&ha.probabilities(), &hb.probabilities()) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share support")]
    fn js_mismatched_lengths_panic() {
        js_divergence(&[1.0], &[0.5, 0.5]);
    }
}

//! Small summary-statistics helpers used by the experiment reports.

use dinar_tensor::json::{Json, ToJson};

/// Mean of a sample (0 for an empty slice).
pub fn mean(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (0 for fewer than two samples).
pub fn std_dev(xs: &[f32]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Linear-interpolated quantile `q ∈ [0, 1]` of a sample.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f32], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(f32::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
}

/// Five-number summary plus mean, used in experiment JSON artifacts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Sample count.
    pub count: usize,
}

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("min", self.min.to_json()),
            ("q1", self.q1.to_json()),
            ("median", self.median.to_json()),
            ("q3", self.q3.to_json()),
            ("max", self.max.to_json()),
            ("mean", self.mean.to_json()),
            ("count", self.count.to_json()),
        ])
    }
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f32]) -> Self {
        Summary {
            min: quantile(xs, 0.0),
            q1: quantile(xs, 0.25),
            median: quantile(xs, 0.5),
            q3: quantile(xs, 0.75),
            max: quantile(xs, 1.0),
            mean: mean(xs),
            count: xs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_is_consistent() {
        let xs: Vec<f32> = (1..=101).map(|i| i as f32).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.count, 101);
        assert!((s.median - 51.0).abs() < 1e-12);
        assert!((s.q1 - 26.0).abs() < 1e-12);
        assert!((s.q3 - 76.0).abs() < 1e-12);
        assert!((s.mean - 51.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }
}

//! Secure aggregation (SA): pairwise additive masking.
//!
//! Following the secure-aggregation line of work the paper cites (Zheng et
//! al. \[54\], after Bonawitz et al.), every pair of clients `(i, j)` agrees on
//! a shared seed; client `i` adds `+PRG(seed_ij)` and client `j` adds
//! `-PRG(seed_ij)` to their uploads, so the masks cancel **exactly** in the
//! server's sum while each individual upload is statistically garbage to the
//! server. This matches the paper's observation (Fig. 6): SA drives the
//! attack AUC on *local* models to 50% but leaves the *global* model exactly
//! as leaky as undefended FedAvg.
//!
//! Because our server computes a *weighted* average, client `i` uploads
//! `θ_i + m_i / w_i` where `w_i` is its FedAvg weight: then
//! `Σ w_i (θ_i + m_i / w_i) = Σ w_i θ_i + Σ m_i = FedAvg` since `Σ m_i = 0`.

use dinar_fl::{ClientMiddleware, FlError, Result};
use dinar_nn::{ModelParams, ParamViewMut};
use dinar_telemetry::Telemetry;
use dinar_tensor::Rng;
use std::sync::Arc;

/// The shared state of one secure-aggregation group: pairwise seeds and
/// FedAvg weights. Create once per FL system and hand an [`Arc`] to each
/// client's [`SecureAggregation`] middleware.
#[derive(Debug)]
pub struct SaGroup {
    num_clients: usize,
    weights: Vec<f32>,
    seed: u64,
    mask_std: f32,
}

impl SaGroup {
    /// Creates a group for `num_clients` clients with the given FedAvg
    /// weights (typically `n_i / Σn`).
    ///
    /// # Panics
    ///
    /// Panics if weights don't match the client count, are non-positive, or
    /// the client count is zero.
    pub fn new(num_clients: usize, weights: Vec<f32>, seed: u64) -> Arc<Self> {
        assert!(num_clients > 0, "group needs at least one client");
        assert_eq!(weights.len(), num_clients, "one weight per client");
        assert!(
            weights.iter().all(|&w| w > 0.0),
            "weights must be positive"
        );
        Arc::new(SaGroup {
            num_clients,
            weights,
            seed,
            mask_std: 10.0,
        })
    }

    /// Convenience constructor deriving weights from client sample counts.
    ///
    /// # Panics
    ///
    /// Same conditions as [`SaGroup::new`].
    pub fn from_sample_counts(counts: &[usize], seed: u64) -> Arc<Self> {
        let total: usize = counts.iter().sum();
        let weights = counts
            .iter()
            .map(|&c| c as f32 / total.max(1) as f32)
            .collect();
        SaGroup::new(counts.len(), weights, seed)
    }

    /// The pairwise mask for the unordered pair `(a, b)`, `a < b` canonical.
    fn pair_rng(&self, a: usize, b: usize) -> Rng {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        Rng::seed_from(
            self.seed
                ^ (lo as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (hi as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        )
    }

    /// Computes client `i`'s total mask (sum over peers, signed by id order)
    /// shaped like `params`, already divided by the client's FedAvg weight.
    fn mask_for(&self, client: usize, params: &ModelParams) -> ModelParams {
        let mut mask = params.zeros_like();
        let mut view = ParamViewMut::of_model(&mut mask);
        for peer in 0..self.num_clients {
            if peer == client {
                continue;
            }
            let mut rng = self.pair_rng(client, peer);
            let sign = if client < peer { 1.0 } else { -1.0 };
            // Draw each peer's PRG stream directly into the mask buffer in
            // flat canonical order, one bulk fill per parameter slice. Both
            // ends of a pair walk the same slice sequence from the same
            // pair seed, so they derive the same counter-based streams; the
            // sign rides in the scale, and z·(-σ) = -(z·σ) exactly, so the
            // masks still cancel bit-for-bit in the server's sum.
            view.for_each_slice_mut(|s| {
                // lint: allow(L010, pairwise masks cancel exactly in the sum; not DP noise, no clip obligation)
                rng.axpy_normal(s, sign * self.mask_std);
            });
        }
        let w = self.weights[client];
        mask.scale(1.0 / w);
        mask
    }
}

/// Per-client secure-aggregation middleware.
#[derive(Debug)]
pub struct SecureAggregation {
    group: Arc<SaGroup>,
    telemetry: Telemetry,
}

impl SecureAggregation {
    /// Creates the middleware for one client of `group`.
    pub fn new(group: Arc<SaGroup>) -> Self {
        SecureAggregation {
            group,
            telemetry: Telemetry::disabled(),
        }
    }
}

impl ClientMiddleware for SecureAggregation {
    fn transform_upload(&mut self, client_id: usize, params: &mut ModelParams) -> Result<()> {
        if client_id >= self.group.num_clients {
            return Err(FlError::Middleware {
                name: "sa",
                reason: format!(
                    "client {client_id} outside group of {}",
                    self.group.num_clients
                ),
            });
        }
        let mask = self.group.mask_for(client_id, params);
        params.add_assign(&mask)?;
        // Pairwise masks cancel exactly in the server's sum: SA spends no
        // differential-privacy budget, and the ledger records that as an
        // explicit zero-cost entry rather than silence.
        self.telemetry
            .privacy_charge_zero("sa", &format!("client[{client_id}]"));
        Ok(())
    }

    fn name(&self) -> &'static str {
        "sa"
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry, _client_id: usize) {
        self.telemetry = telemetry.clone(); // lint: allow(L009, telemetry handle, not params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::LayerParams;
    use dinar_tensor::Tensor;

    fn params(value: f32) -> ModelParams {
        ModelParams::new(vec![
        LayerParams::new(vec![Tensor::full(&[32], value), Tensor::full(&[4], value)]),
        LayerParams::new(vec![Tensor::full(&[8], value)]),
        ])
    }

    #[test]
    fn masks_cancel_in_weighted_sum() {
        let counts = [100usize, 300, 50];
        let group = SaGroup::from_sample_counts(&counts, 42);
        let total: usize = counts.iter().sum();
        let originals = [params(1.0), params(2.0), params(3.0)];
        // Expected FedAvg without masking.
        let mut expected = originals[0].zeros_like();
        for (p, &c) in originals.iter().zip(&counts) {
            expected
                .scaled_add_assign(c as f32 / total as f32, p)
                .unwrap();
        }
        // Masked uploads, then the same weighted sum.
        let mut sum = originals[0].zeros_like();
        for (i, (p, &c)) in originals.iter().zip(&counts).enumerate() {
            let mut masked = p.clone();
            SecureAggregation::new(Arc::clone(&group))
                .transform_upload(i, &mut masked)
                .unwrap();
            sum.scaled_add_assign(c as f32 / total as f32, &masked)
                .unwrap();
        }
        let err = sum.max_abs_diff(&expected).unwrap();
        assert!(err < 1e-3, "masks failed to cancel: max err {err}");
    }

    #[test]
    fn individual_uploads_are_garbage() {
        let group = SaGroup::from_sample_counts(&[10, 10], 7);
        let mut masked = params(1.0);
        SecureAggregation::new(group)
            .transform_upload(0, &mut masked)
            .unwrap();
        // Mask std is 10 / w with w = 0.5 -> deviations of ~20, swamping the
        // original value of 1.
        let dev = masked.sub(&params(1.0)).unwrap().l2_norm();
        assert!(dev > 10.0, "mask too weak: {dev}");
    }

    #[test]
    fn single_client_group_is_identity() {
        let group = SaGroup::from_sample_counts(&[10], 7);
        let mut p = params(4.0);
        SecureAggregation::new(group)
            .transform_upload(0, &mut p)
            .unwrap();
        assert_eq!(p, params(4.0)); // no peers, no masks
    }

    #[test]
    fn out_of_group_client_rejected() {
        let group = SaGroup::from_sample_counts(&[10, 10], 7);
        let mut p = params(1.0);
        assert!(matches!(
            SecureAggregation::new(group).transform_upload(5, &mut p),
            Err(FlError::Middleware { name: "sa", .. })
        ));
    }

    #[test]
    #[should_panic(expected = "one weight per client")]
    fn mismatched_weights_panic() {
        SaGroup::new(3, vec![0.5, 0.5], 0);
    }
}

//! Gradient compression (GC): top-k sparsification of model updates with
//! error feedback.
//!
//! "Another approach to counter MIAs in FL is through Gradient Compression
//! techniques, which reduce the amount of information available for the
//! attacker" (§2.3, following Fu et al.). The client uploads only the
//! largest-magnitude entries of its *update* (trained parameters minus the
//! received global model); the remainder is kept locally as a residual and
//! re-added the next round (error feedback) — the residual buffer is the
//! memory overhead Table 3 attributes to GC.

use dinar_fl::{ClientMiddleware, FlError, Result};
use dinar_nn::ModelParams;
use dinar_telemetry::Telemetry;

/// Exact k-th largest magnitude over the update, found by binary search on
/// IEEE-754 bit patterns: for the non-negative floats `|x|` produces,
/// `total_cmp` order coincides with `u32` bit order, so the k-th largest
/// magnitude is the largest `bits` value with at least `k` elements at or
/// above it. ~31 counting passes, no flat copy, no sort, O(1) extra memory
/// (the old path materialized and sorted the full flat update).
///
/// `k` must be in `1..=param_count`.
fn kth_largest_magnitude(update: &ModelParams, k: usize) -> f32 {
    let count_at_least = |bits: u32| -> usize {
        let mut n = 0;
        for layer in &update.layers {
            for t in &layer.tensors {
                for x in t.as_slice() {
                    if x.abs().to_bits() >= bits {
                        n += 1;
                    }
                }
            }
        }
        n
    };
    // `|x|` has a clear sign bit, so patterns live in 0..=0x7FFF_FFFF (NaN
    // payloads included, above infinity — exactly where total_cmp puts them).
    let (mut lo, mut hi) = (0u32, 0x7FFF_FFFFu32);
    while lo < hi {
        let mid = lo + (hi - lo + 1) / 2;
        if count_at_least(mid) >= k {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    f32::from_bits(lo)
}

/// Top-k update sparsification middleware.
#[derive(Debug)]
pub struct GradientCompression {
    keep_ratio: f32,
    error_feedback: bool,
    received_global: Option<ModelParams>,
    residual: Option<ModelParams>,
    telemetry: Telemetry,
    client_id: usize,
}

impl GradientCompression {
    /// Creates the middleware keeping the top `keep_ratio` fraction of
    /// update entries (by absolute value).
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is outside `(0, 1]`.
    pub fn new(keep_ratio: f32) -> Self {
        assert!(
            keep_ratio > 0.0 && keep_ratio <= 1.0,
            "keep_ratio must be in (0, 1], got {keep_ratio}"
        );
        GradientCompression {
            keep_ratio,
            error_feedback: true,
            received_global: None,
            residual: None,
            telemetry: Telemetry::disabled(),
            client_id: 0,
        }
    }

    /// Enables or disables error feedback. With feedback off, suppressed
    /// update entries are *discarded* rather than retried next round — less
    /// information ever leaves the client (stronger privacy, lower utility),
    /// matching the lossy-compression defenses the paper evaluates.
    pub fn with_error_feedback(mut self, enabled: bool) -> Self {
        self.error_feedback = enabled;
        if !enabled {
            self.residual = None;
        }
        self
    }

    /// The configured keep ratio.
    pub fn keep_ratio(&self) -> f32 {
        self.keep_ratio
    }
}

impl ClientMiddleware for GradientCompression {
    fn transform_download(&mut self, _client_id: usize, params: &mut ModelParams) -> Result<()> {
        self.received_global = Some(params.share());
        Ok(())
    }

    fn transform_upload(&mut self, _client_id: usize, params: &mut ModelParams) -> Result<()> {
        let global = self
            .received_global
            .as_ref()
            .ok_or_else(|| FlError::Middleware {
                name: "gc",
                reason: "upload before any download; no reference model".into(),
            })?;
        // Update = trained - received (+ residual from previous rounds).
        let mut update = params.sub(global)?;
        if let Some(residual) = &self.residual {
            update.add_assign(residual)?;
        }
        // Global top-k threshold over |update|, no flat copy or sort.
        let total = update.param_count();
        let keep = ((total as f32 * self.keep_ratio).ceil() as usize).clamp(1, total);
        let threshold = kth_largest_magnitude(&update, keep);
        // One fused pass turns `update` into the upload in place: a kept
        // entry uploads `global + u`; a suppressed one uploads `global + 0.0`
        // (same arithmetic as the old `global.clone() + sparse update`) and
        // moves `u` into the residual.
        if self.error_feedback {
            // Reuse last round's residual buffer when present — every entry
            // is overwritten below.
            let mut residual = match self.residual.take() {
                Some(r) => r,
                None => update.zeros_like(),
            };
            for (ul, (gl, rl)) in update
                .layers
                .iter_mut()
                .zip(global.layers.iter().zip(&mut residual.layers))
            {
                for (ut, (gt, rt)) in ul
                    .tensors
                    .iter_mut()
                    .zip(gl.tensors.iter().zip(&mut rl.tensors))
                {
                    let gs = gt.as_slice();
                    let rs = rt.as_mut_slice();
                    for (i, u) in ut.as_mut_slice().iter_mut().enumerate() {
                        if u.abs() >= threshold {
                            rs[i] = 0.0; // uploaded, nothing left behind
                            *u += gs[i];
                        } else {
                            rs[i] = *u; // suppressed, kept as residual
                            *u = gs[i] + 0.0;
                        }
                    }
                }
            }
            self.residual = Some(residual);
        } else {
            for (ul, gl) in update.layers.iter_mut().zip(&global.layers) {
                for (ut, gt) in ul.tensors.iter_mut().zip(&gl.tensors) {
                    let gs = gt.as_slice();
                    for (i, u) in ut.as_mut_slice().iter_mut().enumerate() {
                        if u.abs() >= threshold {
                            *u += gs[i];
                        } else {
                            *u = gs[i] + 0.0; // suppressed entry is discarded
                        }
                    }
                }
            }
            self.residual = None;
        }
        // Sparsification discards information but carries no (ε, δ)
        // guarantee; the ledger records the round as an explicit zero-cost
        // entry so audits can tell "no DP" from "not accounted".
        self.telemetry
            .privacy_charge_zero("gc", &format!("client[{}]", self.client_id));
        *params = update;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "gc"
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry, client_id: usize) {
        self.telemetry = telemetry.clone(); // lint: allow(L009, telemetry handle, not params)
        self.client_id = client_id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::LayerParams;
    use dinar_tensor::Tensor;

    fn params(values: &[f32]) -> ModelParams {
        ModelParams::new(vec![LayerParams::new(vec![Tensor::from_slice(values)])])
    }

    #[test]
    fn keeps_only_largest_update_entries() {
        let mut mw = GradientCompression::new(0.25);
        let mut global = params(&[0.0, 0.0, 0.0, 0.0]);
        mw.transform_download(0, &mut global).unwrap();
        let mut trained = params(&[0.1, -2.0, 0.3, 0.05]);
        mw.transform_upload(0, &mut trained).unwrap();
        // Only the -2.0 entry (top 25%) survives.
        assert_eq!(trained.to_flat(), vec![0.0, -2.0, 0.0, 0.0]);
    }

    #[test]
    fn residual_is_error_feedback() {
        let mut mw = GradientCompression::new(0.25);
        let mut global = params(&[0.0; 4]);
        mw.transform_download(0, &mut global).unwrap();
        let mut trained = params(&[0.1, -2.0, 0.3, 0.05]);
        mw.transform_upload(0, &mut trained).unwrap();
        // Round 2: no further training movement; the residual alone should
        // now promote the next-largest entry (0.3).
        let mut global2 = params(&[0.0; 4]);
        mw.transform_download(0, &mut global2).unwrap();
        let mut trained2 = params(&[0.0; 4]);
        mw.transform_upload(0, &mut trained2).unwrap();
        assert_eq!(trained2.to_flat(), vec![0.0, 0.0, 0.3, 0.0]);
    }

    #[test]
    fn keep_ratio_one_is_lossless() {
        let mut mw = GradientCompression::new(1.0);
        let mut global = params(&[1.0, 2.0, 3.0]);
        mw.transform_download(0, &mut global).unwrap();
        let mut trained = params(&[1.5, 1.0, 3.25]);
        let expect = trained.clone();
        mw.transform_upload(0, &mut trained).unwrap();
        assert!(trained.max_abs_diff(&expect).unwrap() < 1e-6);
    }

    #[test]
    fn upload_before_download_errors() {
        let mut mw = GradientCompression::new(0.5);
        let mut p = params(&[1.0]);
        assert!(matches!(
            mw.transform_upload(0, &mut p),
            Err(FlError::Middleware { name: "gc", .. })
        ));
    }

    #[test]
    #[should_panic(expected = "keep_ratio")]
    fn invalid_ratio_panics() {
        GradientCompression::new(0.0);
    }
}

//! Weak differential privacy (WDP): norm bounding plus low-magnitude noise.
//!
//! "Weak Differential Privacy (WDP) applies norm bounding and Gaussian noise
//! with a low magnitude for better model utility" (§2.3, following Sun et
//! al., "Can You Really Backdoor Federated Learning?"). The paper's setting
//! is a norm bound of 5 and σ = 0.025 (§5.2). As in that work, the bound
//! applies to the client's **model update** (trained minus received global).
//! Unlike [`crate::LocalDp`], the noise is an absolute magnitude, not
//! calibrated to a budget — hence "weak": good utility, limited protection
//! (its attack AUC stays high in Fig. 6).

use crate::dp::{add_gaussian_noise, clip_l2};
use dinar_fl::{ClientMiddleware, FlError, Result};
use dinar_nn::ModelParams;
use dinar_telemetry::Telemetry;
use dinar_tensor::Rng;

/// The δ WDP's inverted-mechanism ε is reported against: WDP fixes the noise
/// magnitude instead of a budget, so the ledger entry is the (ε, δ) a
/// Gaussian mechanism with that exact noise would have provided.
const WDP_LEDGER_DELTA: f64 = 1e-5;

/// WDP upload middleware.
#[derive(Debug)]
pub struct WeakDp {
    norm_bound: f32,
    sigma: f32,
    rng: Rng,
    received_global: Option<ModelParams>,
    telemetry: Telemetry,
    client_id: usize,
}

impl WeakDp {
    /// Creates the middleware with explicit bound and noise magnitude.
    pub fn new(norm_bound: f32, sigma: f32, rng: Rng) -> Self {
        WeakDp {
            norm_bound,
            sigma,
            rng,
            received_global: None,
            telemetry: Telemetry::disabled(),
            client_id: 0,
        }
    }

    /// The paper's configuration: norm bound 5, σ = 0.025.
    pub fn paper_default(rng: Rng) -> Self {
        WeakDp::new(5.0, 0.025, rng)
    }
}

impl ClientMiddleware for WeakDp {
    fn transform_download(&mut self, _client_id: usize, params: &mut ModelParams) -> Result<()> {
        self.received_global = Some(params.share());
        Ok(())
    }

    fn transform_upload(&mut self, _client_id: usize, params: &mut ModelParams) -> Result<()> {
        let global = self
            .received_global
            .as_ref()
            .ok_or_else(|| FlError::Middleware {
                name: "wdp",
                reason: "upload before any download; no reference model".into(),
            })?;
        let mut update = params.sub(global)?;
        clip_l2(&mut update, self.norm_bound);
        add_gaussian_noise(&mut update, self.sigma, &mut self.rng);
        // WDP fixes σ instead of a budget; invert the Gaussian-mechanism
        // calibration to find the ε this round's noise actually bought. Per
        // coordinate we add std `sigma` over d coordinates, i.e. a noise
        // *norm* of sigma·√d against sensitivity `norm_bound`, so the
        // effective multiplier is z = sigma·√d / bound and
        // ε = √(2 ln(1.25/δ)) / z — large ε, consistent with "weak".
        if self.telemetry.is_enabled() {
            let d = update.param_count().max(1) as f64;
            let z = f64::from(self.sigma) * d.sqrt() / f64::from(self.norm_bound);
            let eps = if z > 0.0 {
                (2.0 * (1.25 / WDP_LEDGER_DELTA).ln()).sqrt() / z
            } else {
                f64::INFINITY // no noise: clamped to 0 by the ledger, but counted
            };
            self.telemetry.privacy_charge(
                "wdp",
                &format!("client[{}]", self.client_id),
                eps,
                WDP_LEDGER_DELTA,
            );
        }
        // Commuted in-place reconstruction; bit-identical to the old
        // `global.clone() + update` without the upload copy.
        update.add_assign(global)?;
        *params = update;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "wdp"
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry, client_id: usize) {
        self.telemetry = telemetry.clone(); // lint: allow(L009, telemetry handle, not params)
        self.client_id = client_id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::LayerParams;
    use dinar_tensor::Tensor;

    fn params(value: f32) -> ModelParams {
        ModelParams::new(vec![LayerParams::new(vec![Tensor::full(&[400], value)])])
    }

    #[test]
    fn bounds_update_norm_and_adds_small_noise() {
        let mut mw = WeakDp::paper_default(Rng::seed_from(0));
        let mut g = params(0.0);
        mw.transform_download(0, &mut g).unwrap();
        let mut trained = params(1.0); // update norm 20
        mw.transform_upload(0, &mut trained).unwrap();
        // Update clipped to 5, noise sigma 0.025 over 400 coords adds ~0.5.
        let update_norm = trained.l2_norm();
        assert!((update_norm - 5.0).abs() < 1.0, "norm {update_norm}");
    }

    #[test]
    fn small_updates_pass_almost_unchanged() {
        let mut mw = WeakDp::paper_default(Rng::seed_from(1));
        let mut g = params(1.0);
        mw.transform_download(0, &mut g).unwrap();
        let mut trained = params(1.01); // update norm 0.2, below the bound
        mw.transform_upload(0, &mut trained).unwrap();
        let dev = trained.sub(&params(1.01)).unwrap().l2_norm();
        // Only the sigma=0.025 noise remains: norm ~0.5 over 400 coords.
        assert!(dev < 1.0, "deviation {dev}");
    }

    #[test]
    fn noise_is_much_weaker_than_ldp() {
        use crate::{dp::DpParams, ldp::LocalDp};
        let measure = |is_wdp: bool| {
            let mut g = params(0.5);
            let mut trained = params(0.5); // zero true update
            if is_wdp {
                let mut mw = WeakDp::paper_default(Rng::seed_from(3));
                mw.transform_download(0, &mut g).unwrap();
                mw.transform_upload(0, &mut trained).unwrap();
            } else {
                let mut mw = LocalDp::new(DpParams::paper_default(), Rng::seed_from(3));
                mw.transform_download(0, &mut g).unwrap();
                mw.transform_upload(0, &mut trained).unwrap();
            }
            trained.sub(&params(0.5)).unwrap().l2_norm()
        };
        let wdp_dev = measure(true);
        let ldp_dev = measure(false);
        assert!(
            ldp_dev > wdp_dev * 2.0,
            "ldp {ldp_dev} should out-noise wdp {wdp_dev}"
        );
    }

    #[test]
    fn upload_before_download_errors() {
        let mut mw = WeakDp::paper_default(Rng::seed_from(4));
        let mut p = params(1.0);
        assert!(mw.transform_upload(0, &mut p).is_err());
    }
}

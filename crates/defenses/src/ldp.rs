//! Local differential privacy (LDP): clients noise their own uploads.
//!
//! "LDP applies on client model parameters before transmission to the FL
//! server" (§2.3, following Chamikara et al.). As in DP-FedAvg-style
//! client-level DP, the Gaussian mechanism is applied to the client's
//! **model update** — the difference between its trained parameters and the
//! global model it received — so that the clipping bound constrains each
//! client's *contribution*, not the absolute weight scale.

use crate::dp::{gaussian_mechanism, DpParams};
use dinar_fl::{ClientMiddleware, FlError, Result};
use dinar_nn::ModelParams;
use dinar_telemetry::Telemetry;
use dinar_tensor::Rng;

/// LDP upload middleware: clip the update to the L2 bound, add Gaussian
/// noise calibrated to (ε, δ), upload `global + noised update`.
#[derive(Debug)]
pub struct LocalDp {
    dp: DpParams,
    rng: Rng,
    received_global: Option<ModelParams>,
    telemetry: Telemetry,
    client_id: usize,
}

impl LocalDp {
    /// Creates the middleware with a budget and a client-specific RNG stream.
    pub fn new(dp: DpParams, rng: Rng) -> Self {
        LocalDp {
            dp,
            rng,
            received_global: None,
            telemetry: Telemetry::disabled(),
            client_id: 0,
        }
    }

    /// The configured budget.
    pub fn dp_params(&self) -> DpParams {
        self.dp
    }
}

impl ClientMiddleware for LocalDp {
    fn transform_download(&mut self, _client_id: usize, params: &mut ModelParams) -> Result<()> {
        self.received_global = Some(params.share());
        Ok(())
    }

    fn transform_upload(&mut self, _client_id: usize, params: &mut ModelParams) -> Result<()> {
        let global = self
            .received_global
            .as_ref()
            .ok_or_else(|| FlError::Middleware {
                name: "ldp",
                reason: "upload before any download; no reference model".into(),
            })?;
        let mut update = params.sub(global)?;
        gaussian_mechanism(&mut update, &self.dp, &mut self.rng);
        // Each upload is one (ε, δ) invocation of the Gaussian mechanism on
        // this client's data; the ledger composes the per-round charges.
        self.telemetry.privacy_charge(
            "ldp",
            &format!("client[{}]", self.client_id),
            f64::from(self.dp.epsilon),
            f64::from(self.dp.delta),
        );
        // `update + global` adds the same pairs as the old
        // `global.clone() + update` (f32 addition commutes bitwise), without
        // materializing an upload copy.
        update.add_assign(global)?;
        *params = update;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "ldp"
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry, client_id: usize) {
        self.telemetry = telemetry.clone(); // lint: allow(L009, telemetry handle, not params)
        self.client_id = client_id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::LayerParams;
    use dinar_tensor::Tensor;

    fn params(value: f32) -> ModelParams {
        ModelParams::new(vec![LayerParams::new(vec![Tensor::full(&[1000], value)])])
    }

    fn round_trip(mw: &mut LocalDp, global: f32, trained: f32) -> ModelParams {
        let mut g = params(global);
        mw.transform_download(0, &mut g).unwrap();
        let mut t = params(trained);
        mw.transform_upload(0, &mut t).unwrap();
        t
    }

    #[test]
    fn upload_perturbs_the_update_not_the_base() {
        let mut mw = LocalDp::new(DpParams::paper_default(), Rng::seed_from(0));
        let uploaded = round_trip(&mut mw, 1.0, 1.01);
        // The upload stays anchored at the global model plus a (clipped,
        // noised) small update — not collapsed toward zero.
        let dev_from_global = uploaded.sub(&params(1.0)).unwrap().l2_norm();
        let dev_from_trained = uploaded.sub(&params(1.01)).unwrap().l2_norm();
        assert!(dev_from_global > 0.0);
        assert!(dev_from_trained < params(1.01).l2_norm()); // nowhere near zeroing
    }

    #[test]
    fn smaller_budget_perturbs_more() {
        let deviation = |eps: f32| {
            let mut mw = LocalDp::new(
                DpParams::paper_default().with_epsilon(eps),
                Rng::seed_from(7),
            );
            let uploaded = round_trip(&mut mw, 0.5, 0.5); // zero true update
            uploaded.sub(&params(0.5)).unwrap().l2_norm()
        };
        assert!(deviation(0.05) > deviation(2.2) * 5.0);
    }

    #[test]
    fn update_is_clipped() {
        let mut mw = LocalDp::new(
            DpParams {
                epsilon: 1000.0, // negligible noise isolates the clipping
                delta: 1e-5,
                clip_norm: 2.0,
            },
            Rng::seed_from(1),
        );
        // Huge update of norm ~31.6 gets clipped to 2.
        let uploaded = round_trip(&mut mw, 0.0, 1.0);
        let update_norm = uploaded.l2_norm();
        assert!((update_norm - 2.0).abs() < 0.1, "norm {update_norm}");
    }

    #[test]
    fn upload_before_download_errors() {
        let mut mw = LocalDp::new(DpParams::paper_default(), Rng::seed_from(2));
        let mut p = params(1.0);
        assert!(matches!(
            mw.transform_upload(0, &mut p),
            Err(FlError::Middleware { name: "ldp", .. })
        ));
    }
}

//! # dinar-defenses
//!
//! The five state-of-the-art baseline defenses the paper compares DINAR
//! against (§5.2), implemented from scratch as FL middleware:
//!
//! | Defense | Hook | Paper setting |
//! |---|---|---|
//! | [`ldp::LocalDp`] — local differential privacy | client upload | ε = 2.2, δ = 10⁻⁵ |
//! | [`cdp::CentralDp`] — central differential privacy | server aggregate | ε = 2.2, δ = 10⁻⁵ |
//! | [`wdp::WeakDp`] — norm bounding + weak Gaussian noise | client upload | bound 5, σ = 0.025 |
//! | [`gc::GradientCompression`] — top-k update sparsification | client upload | keeps the largest update entries |
//! | [`sa::SecureAggregation`] — pairwise additive masking | client upload | masks cancel in the FedAvg sum |
//!
//! **DP calibration note.** The paper uses Opacus, whose moments accountant
//! amortizes a privacy budget over thousands of SGD steps. We apply the
//! analytic Gaussian mechanism per *model upload* with
//! `σ = √(2 ln(1.25/δ)) / ε` and a per-coordinate noise scale of
//! `σ · clip / √d` (so the total noise norm is `σ · clip`). The absolute ε
//! values are therefore not comparable to Opacus's, but the *shape* the
//! paper's experiments rely on — noise ∝ 1/ε, privacy improving and utility
//! collapsing as ε shrinks (Fig. 10) — is preserved exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdp;
pub mod dp;
pub mod dpsgd;
pub mod gc;
pub mod ldp;
pub mod sa;
pub mod wdp;

pub use cdp::CentralDp;
pub use dp::DpParams;
pub use dpsgd::DpOptimizer;
pub use gc::GradientCompression;
pub use ldp::LocalDp;
pub use sa::{SaGroup, SecureAggregation};
pub use wdp::WeakDp;

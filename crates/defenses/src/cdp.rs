//! Central differential privacy (CDP): the server noises the aggregate.
//!
//! "CDP \[is\] where the server applies DP on aggregated model parameters
//! before sending the resulting model to the clients" (§2.3, following
//! Naseri et al.). The mechanism is applied to the **aggregate's update**
//! relative to the previous global model, with the noise scale divided by
//! the number of participating clients (the server's aggregate has
//! sensitivity `clip / N` with respect to one client). Protects the global
//! model; individual client uploads remain visible to the server — which is
//! why CDP protects local models poorly in the paper's Fig. 6.

use crate::dp::{add_gaussian_noise, clip_l2_with_count, DpParams};
use dinar_fl::{Result, ServerMiddleware};
use dinar_nn::ModelParams;
use dinar_telemetry::Telemetry;
use dinar_tensor::Rng;

/// CDP server middleware: the Gaussian mechanism on the FedAvg aggregate's
/// round update.
#[derive(Debug)]
pub struct CentralDp {
    dp: DpParams,
    clients: usize,
    rng: Rng,
    previous_global: Option<ModelParams>,
    telemetry: Telemetry,
}

impl CentralDp {
    /// Creates the middleware with a budget, the number of participating
    /// clients (noise divisor), and a server RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is zero.
    pub fn new(dp: DpParams, clients: usize, rng: Rng) -> Self {
        assert!(clients > 0, "CDP needs at least one client");
        CentralDp {
            dp,
            clients,
            rng,
            previous_global: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The configured budget.
    pub fn dp_params(&self) -> DpParams {
        self.dp
    }
}

impl ServerMiddleware for CentralDp {
    fn transform_aggregate(&mut self, params: &mut ModelParams) -> Result<()> {
        if let Some(prev) = &self.previous_global {
            let mut update = params.sub(prev)?;
            let (_, count) = clip_l2_with_count(&mut update, self.dp.clip_norm);
            let d = count.max(1) as f32;
            let std_dev = self.dp.noise_multiplier() * self.dp.clip_norm
                / (self.clients as f32 * d.sqrt());
            add_gaussian_noise(&mut update, std_dev, &mut self.rng);
            // One (ε, δ) invocation of the Gaussian mechanism on the global
            // aggregate; the ledger composes the per-round charges.
            self.telemetry.privacy_charge(
                "cdp",
                "global",
                f64::from(self.dp.epsilon),
                f64::from(self.dp.delta),
            );
            // Commuted in-place reconstruction (bit-identical to
            // `prev.clone() + update`).
            update.add_assign(prev)?;
            *params = update;
        } else {
            // First-round pass-through releases the aggregate unnoised: an
            // explicit zero-cost ledger entry, so the audit shows the round
            // was seen rather than unaccounted for.
            self.telemetry.privacy_charge_zero("cdp", "global");
        }
        // First round has no reference; release the aggregate as-is (it is
        // one step from the public initialization).
        self.previous_global = Some(params.share());
        Ok(())
    }

    fn name(&self) -> &'static str {
        "cdp"
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone(); // lint: allow(L009, telemetry handle, not params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::LayerParams;
    use dinar_tensor::Tensor;

    fn params(value: f32) -> ModelParams {
        ModelParams::new(vec![LayerParams::new(vec![Tensor::full(&[400], value)])])
    }

    #[test]
    fn second_round_update_is_clipped_and_noised() {
        let mut mw = CentralDp::new(DpParams::paper_default(), 5, Rng::seed_from(0));
        let mut first = params(1.0);
        mw.transform_aggregate(&mut first).unwrap();
        assert_eq!(first, params(1.0)); // first round passes through

        let mut second = params(2.0); // update norm 20 -> clipped to 5
        mw.transform_aggregate(&mut second).unwrap();
        let update_norm = second.sub(&params(1.0)).unwrap().l2_norm();
        assert!((update_norm - 5.0).abs() < 1.0, "norm {update_norm}");
        assert!(second.max_abs_diff(&params(2.0)).unwrap() > 0.1);
    }

    #[test]
    fn more_clients_means_less_noise() {
        let noise_norm = |clients: usize| {
            let mut mw =
                CentralDp::new(DpParams::paper_default(), clients, Rng::seed_from(1));
            let mut first = params(1.0);
            mw.transform_aggregate(&mut first).unwrap();
            let mut second = params(1.0); // zero true update -> pure noise
            mw.transform_aggregate(&mut second).unwrap();
            second.sub(&params(1.0)).unwrap().l2_norm()
        };
        assert!(noise_norm(2) > noise_norm(20) * 5.0);
    }

    #[test]
    fn deterministic_per_stream() {
        let run = |seed: u64| {
            let mut mw = CentralDp::new(DpParams::paper_default(), 5, Rng::seed_from(seed));
            let mut a = params(1.0);
            mw.transform_aggregate(&mut a).unwrap();
            let mut b = params(1.2);
            mw.transform_aggregate(&mut b).unwrap();
            b
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        CentralDp::new(DpParams::paper_default(), 0, Rng::seed_from(0));
    }
}

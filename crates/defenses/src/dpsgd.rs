//! Training-time differential privacy: the DP-SGD gradient perturbation the
//! paper applies through Opacus.
//!
//! Upload-time noising cannot undo memorization that already happened during
//! local training; the Opacus-style defenses instead perturb **every
//! optimizer step**: clip the gradient to a norm bound `C`, add Gaussian
//! noise with multiplier σ(ε, δ), then hand the gradient to the wrapped
//! optimizer. [`DpOptimizer`] wraps any [`Optimizer`] with exactly that
//! transform (batch-level clipping — the standard CPU-friendly approximation
//! of Opacus's per-sample clipping, preserving the noise-vs-budget shape).

use crate::dp::{clip_factor, DpParams};
use dinar_nn::optim::Optimizer;
use dinar_nn::{Model, Result};
use dinar_telemetry::Telemetry;
use dinar_tensor::Rng;

/// DP-SGD wrapper: gradient clipping + Gaussian noise before every step of
/// the wrapped optimizer.
#[derive(Debug)]
pub struct DpOptimizer {
    inner: Box<dyn Optimizer>,
    dp: DpParams,
    amortization: f32,
    rng: Rng,
    telemetry: Telemetry,
    client_id: usize,
}

impl DpOptimizer {
    /// Wraps `inner` with the (ε, δ)-calibrated gradient perturbation.
    pub fn new(inner: Box<dyn Optimizer>, dp: DpParams, rng: Rng) -> Self {
        DpOptimizer {
            inner,
            dp,
            amortization: 1.0,
            rng,
            telemetry: Telemetry::disabled(),
            client_id: 0,
        }
    }

    /// Amortizes the budget over a known number of steps: per-step noise is
    /// divided by `sqrt(steps)`, the advanced-composition scaling a privacy
    /// accountant applies when the total budget covers a whole training run
    /// (as Opacus does).
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn with_amortization_over(mut self, steps: usize) -> Self {
        assert!(steps > 0, "amortization requires at least one step");
        self.amortization = (steps as f32).sqrt();
        self
    }

    /// The configured budget.
    pub fn dp_params(&self) -> DpParams {
        self.dp
    }
}

impl Optimizer for DpOptimizer {
    fn step(&mut self, model: &mut Model) -> Result<()> {
        // Global L2 norm of the accumulated gradient.
        let mut norm_sq = 0.0f64;
        for g in model.grads_mut() {
            for &v in g.as_slice() {
                norm_sq += (v as f64) * (v as f64);
            }
        }
        let norm = norm_sq.sqrt() as f32;
        let clip = self.dp.clip_norm;
        let scale = clip_factor(norm, clip);
        // Per-coordinate noise std σ·C/√d: total noise norm σ·C, the same
        // calibration as the upload-time mechanism, applied per step.
        let grads = model.grads_mut();
        let d: usize = grads.iter().map(|g| g.len()).sum();
        let std_dev =
            self.dp.noise_multiplier() * clip / ((d.max(1) as f32).sqrt() * self.amortization);
        // Clip (scale in place), then one bulk counter-based noise fill per
        // gradient tensor — the per-step cost is a few ns per coordinate
        // instead of a scalar Box–Muller draw each.
        for g in grads {
            if scale < 1.0 {
                for v in g.as_mut_slice() {
                    *v *= scale;
                }
            }
            self.rng.axpy_normal(g.as_mut_slice(), std_dev);
        }
        // Each step is one Gaussian-mechanism invocation. Amortization over
        // k steps divides the per-step noise by √k, so the per-step budget
        // *inflates* to ε·√k — the composition in the ledger then recovers
        // the whole-run cost instead of double-discounting it.
        self.telemetry.privacy_charge(
            "dpsgd",
            &format!("client[{}]", self.client_id),
            f64::from(self.dp.epsilon) * f64::from(self.amortization),
            f64::from(self.dp.delta),
        );
        self.inner.step(model)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn name(&self) -> &'static str {
        "dp-sgd"
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry, client_id: usize) {
        self.telemetry = telemetry.clone(); // lint: allow(L009, telemetry handle, not params)
        self.client_id = client_id;
        self.inner.attach_telemetry(telemetry, client_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::loss::CrossEntropyLoss;
    use dinar_nn::models::{self, Activation};
    use dinar_nn::optim::Sgd;
    use dinar_tensor::Tensor;

    fn train_step(model: &mut Model, opt: &mut dyn Optimizer, rng: &mut Rng) {
        let x = rng.randn(&[8, 4]);
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let logits = model.forward(&x, true).unwrap();
        let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
        model.zero_grad();
        model.backward(&grad).unwrap();
        opt.step(model).unwrap();
    }

    #[test]
    fn noised_steps_diverge_from_clean_steps() {
        let mut rng = Rng::seed_from(0);
        let mut clean = models::mlp(&[4, 8, 2], Activation::ReLU, &mut rng).unwrap();
        let init = clean.params();
        let mut noised = models::mlp(&[4, 8, 2], Activation::ReLU, &mut rng).unwrap();
        noised.set_params(&init).unwrap();

        let mut clean_opt = Sgd::new(0.1);
        let mut dp_opt = DpOptimizer::new(
            Box::new(Sgd::new(0.1)),
            DpParams::paper_default(),
            Rng::seed_from(1),
        );
        let mut data_rng = Rng::seed_from(2);
        train_step(&mut clean, &mut clean_opt, &mut data_rng);
        let mut data_rng = Rng::seed_from(2);
        train_step(&mut noised, &mut dp_opt, &mut data_rng);
        assert!(clean.params().max_abs_diff(&noised.params()).unwrap() > 1e-4);
    }

    #[test]
    fn smaller_epsilon_adds_more_noise() {
        let displacement = |eps: f32| {
            let mut rng = Rng::seed_from(3);
            let mut model = models::mlp(&[4, 8, 2], Activation::ReLU, &mut rng).unwrap();
            let before = model.params();
            let mut opt = DpOptimizer::new(
                Box::new(Sgd::new(0.0)), // zero LR isolates the injected noise
                DpParams::paper_default().with_epsilon(eps),
                Rng::seed_from(4),
            );
            // One manual "gradient" of zeros: noise is all that remains.
            let x = Tensor::zeros(&[2, 4]);
            let logits = model.forward(&x, true).unwrap();
            let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &[0, 1]).unwrap();
            model.zero_grad();
            model.backward(&grad).unwrap();
            opt.step(&mut model).unwrap();
            // With lr 0, params unchanged; measure the noised gradient norm
            // instead via a second step with lr 1.
            let mut opt2 = DpOptimizer::new(
                Box::new(Sgd::new(1.0)),
                DpParams::paper_default().with_epsilon(eps),
                Rng::seed_from(4),
            );
            opt2.step(&mut model).unwrap();
            model.params().sub(&before).unwrap().l2_norm()
        };
        assert!(displacement(0.05) > displacement(2.2) * 5.0);
    }

    #[test]
    fn gradient_is_clipped_before_inner_step() {
        let mut rng = Rng::seed_from(5);
        let mut model = models::mlp(&[4, 2], Activation::ReLU, &mut rng).unwrap();
        let before = model.params();
        // Huge synthetic gradient via a large-magnitude batch.
        let x = rng.randn_with(&[16, 4], 0.0, 100.0);
        let labels: Vec<usize> = (0..16).map(|i| i % 2).collect();
        let logits = model.forward(&x, true).unwrap();
        let (_, grad) = CrossEntropyLoss.loss_and_grad(&logits, &labels).unwrap();
        model.zero_grad();
        model.backward(&grad).unwrap();
        let mut opt = DpOptimizer::new(
            Box::new(Sgd::new(1.0)),
            DpParams {
                epsilon: 1000.0, // negligible noise isolates the clipping
                delta: 1e-5,
                clip_norm: 0.5,
            },
            Rng::seed_from(6),
        );
        opt.step(&mut model).unwrap();
        // With lr 1 and clip 0.5, the parameter displacement is ~0.5.
        let disp = model.params().sub(&before).unwrap().l2_norm();
        assert!((disp - 0.5).abs() < 0.05, "displacement {disp}");
    }
}

//! Shared differential-privacy machinery: the Gaussian mechanism with
//! L2 clipping.

use dinar_nn::{ModelParams, ParamView, ParamViewMut};
use dinar_tensor::Rng;

/// An (ε, δ) budget with an L2 clipping bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpParams {
    /// Privacy budget ε (the paper's default is 2.2).
    pub epsilon: f32,
    /// Failure probability δ (the paper's default is 10⁻⁵).
    pub delta: f32,
    /// L2 clipping bound applied before noising.
    pub clip_norm: f32,
}

impl DpParams {
    /// The paper's default budget: ε = 2.2, δ = 10⁻⁵ (§5.2, following \[33\]).
    pub fn paper_default() -> Self {
        DpParams {
            epsilon: 2.2,
            delta: 1e-5,
            clip_norm: 5.0,
        }
    }

    /// Returns this budget with a different ε (for the Fig. 10 sweep).
    pub fn with_epsilon(mut self, epsilon: f32) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Analytic Gaussian-mechanism noise multiplier:
    /// `σ = √(2 ln(1.25/δ)) / ε`.
    ///
    /// # Panics
    ///
    /// Panics if ε ≤ 0 or δ ∉ (0, 1).
    pub fn noise_multiplier(&self) -> f32 {
        assert!(self.epsilon > 0.0, "epsilon must be positive");
        assert!(
            self.delta > 0.0 && self.delta < 1.0,
            "delta must be in (0, 1)"
        );
        (2.0 * (1.25 / self.delta).ln()).sqrt() / self.epsilon
    }
}

/// Clips the parameter set to `clip_norm` in L2 (uniform scaling), returning
/// the factor applied (1.0 when already within the bound).
pub fn clip_l2(params: &mut ModelParams, clip_norm: f32) -> f32 {
    let norm = ParamView::of_model(params).l2_norm();
    let factor = clip_factor(norm, clip_norm);
    if factor < 1.0 {
        params.scale(factor);
    }
    factor
}

/// Like [`clip_l2`] but returns the **pre-clip** norm together with the
/// parameter count, both from the same single traversal — the shape the
/// mechanisms need to scale their noise (`σ · clip / √d`) without a second
/// pass over the parameters.
pub fn clip_l2_with_count(params: &mut ModelParams, clip_norm: f32) -> (f32, usize) {
    let (norm, count) = ParamView::of_model(params).norm_and_count();
    let factor = clip_factor(norm, clip_norm);
    if factor < 1.0 {
        params.scale(factor);
    }
    (norm, count)
}

/// The scaling factor that projects a vector of L2 norm `norm` onto the
/// `clip_norm` ball: `clip/norm` when outside, `1.0` otherwise (including
/// the zero vector). Fused mechanisms like DP-SGD apply this factor inline
/// instead of materializing a clipped copy.
pub fn clip_factor(norm: f32, clip_norm: f32) -> f32 {
    if norm > clip_norm && norm > 0.0 {
        clip_norm / norm
    } else {
        1.0
    }
}

/// Adds i.i.d. Gaussian noise with standard deviation `std_dev` to every
/// parameter, drawn in place through a [`ParamViewMut`] in flat canonical
/// order. Each parameter slice is one bulk [`Rng::axpy_normal`] fill
/// (chunked counter-based Box–Muller), so noising costs a few ns per
/// parameter instead of a scalar libm round-trip each — with PR 5's
/// in-place noising this was the dominant per-round defense cost. No noise
/// tensors are materialized (the clipped-copy overhead remains where the
/// caller makes one).
pub fn add_gaussian_noise(params: &mut ModelParams, std_dev: f32, rng: &mut Rng) {
    if std_dev <= 0.0 {
        return;
    }
    ParamViewMut::of_model(params).for_each_slice_mut(|s| {
        rng.axpy_normal(s, std_dev);
    });
}

/// The full clip-then-noise Gaussian mechanism.
///
/// Noise is scaled per coordinate as `σ · clip / √d` (with `d` the parameter
/// count), so the *norm* of the added noise is `σ · clip` in expectation —
/// proportional to the clipping bound and to the noise multiplier, as in the
/// client-level DP literature. Norm and parameter count come from one pass
/// over a [`ParamView`] instead of two traversals.
pub fn gaussian_mechanism(params: &mut ModelParams, dp: &DpParams, rng: &mut Rng) {
    let (_, count) = clip_l2_with_count(params, dp.clip_norm);
    let d = count.max(1) as f32;
    let std_dev = dp.noise_multiplier() * dp.clip_norm / d.sqrt();
    add_gaussian_noise(params, std_dev, rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dinar_nn::LayerParams;
    use dinar_tensor::Tensor;

    fn params(value: f32, len: usize) -> ModelParams {
        ModelParams::new(vec![LayerParams::new(vec![Tensor::full(&[len], value)])])
    }

    #[test]
    fn noise_multiplier_matches_formula() {
        let dp = DpParams::paper_default();
        let expected = (2.0f32 * (1.25f32 / 1e-5).ln()).sqrt() / 2.2;
        assert!((dp.noise_multiplier() - expected).abs() < 1e-6);
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        let base = DpParams::paper_default();
        assert!(
            base.with_epsilon(0.05).noise_multiplier()
                > base.with_epsilon(2.2).noise_multiplier() * 10.0
        );
    }

    #[test]
    fn clip_scales_down_only_when_needed() {
        let mut big = params(1.0, 100); // norm 10
        let f = clip_l2(&mut big, 5.0);
        assert!((f - 0.5).abs() < 1e-6);
        assert!((big.l2_norm() - 5.0).abs() < 1e-4);

        let mut small = params(0.1, 100); // norm 1
        assert_eq!(clip_l2(&mut small, 5.0), 1.0);
        assert!((small.l2_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn noise_perturbs_with_expected_scale() {
        let mut p = params(0.0, 10_000);
        let mut rng = Rng::seed_from(0);
        add_gaussian_noise(&mut p, 0.5, &mut rng);
        let flat = p.to_flat();
        let var = flat.iter().map(|x| x * x).sum::<f32>() / flat.len() as f32;
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }

    #[test]
    fn zero_std_is_identity() {
        let mut p = params(1.0, 8);
        let before = p.clone();
        add_gaussian_noise(&mut p, 0.0, &mut Rng::seed_from(0));
        assert_eq!(p, before);
    }

    #[test]
    fn mechanism_noise_norm_tracks_sigma_times_clip() {
        let mut p = params(0.0, 40_000);
        let dp = DpParams {
            epsilon: 1.0,
            delta: 1e-5,
            clip_norm: 3.0,
        };
        let mut rng = Rng::seed_from(1);
        gaussian_mechanism(&mut p, &dp, &mut rng);
        // Input was zero so the output is pure noise with expected norm
        // sigma * clip.
        let expected = dp.noise_multiplier() * dp.clip_norm;
        let actual = p.l2_norm();
        assert!(
            (actual - expected).abs() / expected < 0.05,
            "norm {actual} vs expected {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_panics() {
        DpParams {
            epsilon: 0.0,
            delta: 1e-5,
            clip_norm: 1.0,
        }
        .noise_multiplier();
    }
}

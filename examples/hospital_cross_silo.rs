//! Cross-silo FL among hospitals (the paper's Texas100 scenario): five
//! hospitals with heterogeneous (non-IID) patient populations train a
//! procedure classifier without sharing records, and agree via the
//! Byzantine-tolerant DINAR initialization vote on which layer to protect —
//! even with one malicious hospital in the vote.
//!
//! ```text
//! cargo run --release --example hospital_cross_silo
//! ```

use dinar_suite::core::init::{agree_on_layer, InitConfig};
use dinar_suite::core::middleware::DinarMiddleware;
use dinar_suite::core::DinarConfig;
use dinar_suite::data::catalog::{self, Profile};
use dinar_suite::data::partition::{partition_dataset, Distribution};
use dinar_suite::data::split::attack_split;
use dinar_suite::fl::{FlConfig, FlSystem};
use dinar_suite::nn::{models, optim::Adagrad};
use dinar_suite::tensor::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(2024);
    let hospitals = 5;

    // Texas100-like hospital discharge records (500 binary features, 100
    // procedure classes in the mini profile).
    let entry = catalog::texas100(Profile::Mini);
    let features = entry.spec.modality.feature_len();
    let classes = entry.spec.num_classes;
    let dataset = entry.generate(&mut rng)?;
    let split = attack_split(&dataset, &mut rng)?;

    // Hospitals serve different populations: Dirichlet(2) non-IID shards.
    let shards = partition_dataset(&split.train, hospitals, Distribution::Dirichlet(2.0), &mut rng)?;
    for (i, shard) in shards.iter().enumerate() {
        let hist = shard.class_histogram();
        let top = hist.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
        println!(
            "hospital {i}: {} records, most common procedure class {} ({} records)",
            shard.len(),
            top.0,
            top.1
        );
    }

    // DINAR initialization: every hospital probes its own data for the most
    // privacy-sensitive layer, then all vote. Hospital 4 is Byzantine.
    let arch = move |rng: &mut Rng| models::fcnn6(features, classes, 64, rng);
    let client_data: Vec<_> = shards
        .iter()
        .map(|shard| {
            let mut r = rng.split(shard.len() as u64);
            let (members, held_out) = shard.split_fraction(0.8, &mut r).expect("non-empty shard");
            (members, held_out)
        })
        .collect();
    let init = InitConfig {
        warmup_epochs: 10,
        ..InitConfig::default()
    };
    let voted_layer = agree_on_layer(&client_data, arch, &[4], &init)?;
    println!("\nconsensus (with 1 Byzantine hospital): protect layer {voted_layer}");

    // Federated training with DINAR protecting the agreed layer.
    let dinar_config = DinarConfig::default();
    let mut system = FlSystem::builder(FlConfig {
        local_epochs: 5,
        batch_size: 64,
        seed: 11,
    })
    .clients_from_shards(shards, arch, |_| Box::new(Adagrad::new(0.05)))?
    .with_client_middleware(|id| {
        vec![Box::new(DinarMiddleware::new(voted_layer, dinar_config, id as u64))]
    })
    .build()?;

    for report in system.run(10)? {
        if report.round % 5 == 0 || report.round == 1 {
            println!(
                "round {:>2}: mean training loss {:.3}",
                report.round, report.mean_train_loss
            );
        }
    }
    let accuracy = system.mean_client_accuracy(&split.test)?;
    println!(
        "\nmean personalized accuracy across hospitals: {:.1}% ({} classes)",
        accuracy * 100.0,
        classes
    );
    println!("every upload left each hospital with layer {voted_layer} obfuscated");
    Ok(())
}

//! Distributed execution: every client on its own thread, exchanging models
//! only through messages — plus tracing and checkpointing, the operational
//! pieces a deployed FL middleware needs.
//!
//! ```text
//! cargo run --release --example distributed_training
//! ```

use dinar_suite::core::middleware::DinarMiddleware;
use dinar_suite::core::DinarConfig;
use dinar_suite::data::catalog::{self, Profile};
use dinar_suite::data::partition::{partition_dataset, Distribution};
use dinar_suite::data::split::attack_split;
use dinar_suite::fl::trace::{FlEvent, TraceSink, Traced};
use dinar_suite::fl::transport::run_threaded;
use dinar_suite::fl::{ClientMiddleware, FlConfig, FlSystem};
use dinar_suite::nn::{io, models, optim::Adagrad};
use dinar_suite::tensor::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(99);
    let dataset = catalog::texas100(Profile::Mini).generate(&mut rng)?;
    let split = attack_split(&dataset, &mut rng)?;
    let shards = partition_dataset(&split.train, 4, Distribution::Iid, &mut rng)?;

    // Trace every middleware invocation across all client threads.
    let sink = TraceSink::new();
    let mw_sink = sink.clone();
    let dinar_config = DinarConfig::default();
    let system = FlSystem::builder(FlConfig {
        local_epochs: 3,
        batch_size: 64,
        seed: 42,
    })
    .clients_from_shards(
        shards,
        |rng| models::fcnn6(500, 100, 64, rng),
        |_| Box::new(Adagrad::new(0.05)),
    )?
    .with_client_middleware(move |id| {
        vec![Box::new(Traced::new(
            DinarMiddleware::new(4, dinar_config, id as u64),
            mw_sink.clone(),
            id,
        )) as Box<dyn ClientMiddleware>]
    })
    .build()?;

    println!("running 6 rounds with one thread per client ...");
    let (system, reports) = run_threaded(system, 6)?;
    for report in &reports {
        sink.emit(FlEvent::Aggregated {
            round: report.round,
            updates: system.clients().len(),
        });
        println!(
            "round {:>2}: mean training loss {:.3} (client wall-clock {:.3}s)",
            report.round, report.mean_train_loss, report.cost.client_train_s
        );
    }

    // Checkpoint the final global model and prove the round trip.
    let path = std::env::temp_dir().join("dinar-global.dnck");
    io::save(system.global_params(), &path)?;
    let restored = io::load(&path)?;
    assert!(system.global_params().max_abs_diff(&restored)? < 1e-9);
    println!("\ncheckpointed global model to {}", path.display());

    let summary = sink.summary();
    println!(
        "trace: {} events over {:?}; DINAR middleware invocations: {:?}",
        summary.events, summary.span, summary.middleware_invocations
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}

//! Which layer of your model leaks membership? Runs the paper's §3
//! layer-sensitivity analysis on a freshly trained audio classifier (the
//! Speech Commands scenario) and prints the divergence profile.
//!
//! ```text
//! cargo run --release --example layer_sensitivity
//! ```

use dinar_suite::core::sensitivity::{layer_divergences, SensitivityConfig};
use dinar_suite::data::catalog::{self, Profile};
use dinar_suite::data::split::attack_split;
use dinar_suite::nn::loss::CrossEntropyLoss;
use dinar_suite::nn::models;
use dinar_suite::nn::optim::{Adagrad, Optimizer};
use dinar_suite::tensor::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(5);
    let entry = catalog::speech_commands(Profile::Mini);
    let dataset = entry.generate(&mut rng)?;
    let split = attack_split(&dataset, &mut rng)?;
    let members = split.train.subset(&(0..256).collect::<Vec<_>>())?;

    // Train the M18-style waveform classifier until it overfits a little —
    // a model with no generalization gap has nothing to leak.
    let mut model = models::m18_mini(entry.spec.num_classes, &mut rng)?;
    let mut opt = Adagrad::new(0.05);
    let loss_fn = CrossEntropyLoss;
    for epoch in 0..40 {
        let mut total = 0.0;
        let mut batches = 0;
        for idx in members.batch_indices(32, &mut rng) {
            let batch = members.batch(&idx)?;
            let logits = model.forward(&batch.features, true)?;
            let (loss, grad) = loss_fn.loss_and_grad(&logits, &batch.labels)?;
            model.zero_grad();
            model.backward(&grad)?;
            opt.step(&mut model)?;
            total += loss;
            batches += 1;
        }
        if epoch % 10 == 0 {
            println!("epoch {epoch:>2}: loss {:.3}", total / batches as f32);
        }
    }
    let train_batch = members.full_batch()?;
    let test_batch = split.test.full_batch()?;
    println!(
        "\ntrain accuracy {:.1}% vs test accuracy {:.1}% — the gap is what leaks",
        model.accuracy(&train_batch.features, &train_batch.labels)? * 100.0,
        model.accuracy(&test_batch.features, &test_batch.labels)? * 100.0
    );

    // The §3 analysis: JS divergence between member and non-member gradient
    // distributions, per trainable layer.
    let divergences = layer_divergences(
        &mut model,
        &members,
        &split.test,
        &SensitivityConfig::default(),
        &mut rng,
    )?;
    println!("\nper-layer membership-leakage profile:");
    for (i, d) in divergences.iter().enumerate() {
        println!("  layer {i}: {d:.4} {}", "#".repeat((d * 100.0).round() as usize));
    }
    let p = divergences
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    println!("\nDINAR would propose protecting layer {p} for this client");
    Ok(())
}

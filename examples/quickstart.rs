//! Quickstart: train a small cross-silo FL system, attack it with a
//! membership inference attack, then attach DINAR and attack again.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dinar_suite::attacks::threshold::LossThresholdAttack;
use dinar_suite::attacks::evaluate_attack;
use dinar_suite::core::middleware::DinarMiddleware;
use dinar_suite::core::DinarConfig;
use dinar_suite::data::catalog::{self, Profile};
use dinar_suite::data::partition::{partition_dataset, Distribution};
use dinar_suite::data::split::attack_split;
use dinar_suite::fl::{FlConfig, FlSystem};
use dinar_suite::nn::{models, optim::Adagrad};
use dinar_suite::tensor::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(7);

    // 1. Synthesize a Purchase100-like dataset and apply the paper's split:
    //    half to the attacker, then 80/20 train/test.
    let dataset = catalog::purchase100(Profile::Mini).generate(&mut rng)?;
    let split = attack_split(&dataset, &mut rng)?;
    println!(
        "dataset: {} samples -> attacker {}, train {}, test {}",
        dataset.len(),
        split.attacker.len(),
        split.train.len(),
        split.test.len()
    );

    // 2. Partition the training pool across 5 clients and run undefended FL.
    let shards = partition_dataset(&split.train, 5, Distribution::Iid, &mut rng)?;
    let config = FlConfig {
        local_epochs: 5,
        batch_size: 64,
        seed: 7,
    };
    let arch = |rng: &mut Rng| models::fcnn6(600, 100, 64, rng);
    let mut undefended = FlSystem::builder(config)
        .clients_from_shards(shards.clone(), arch, |_| Box::new(Adagrad::new(0.05)))?
        .build()?;
    undefended.run(8)?;
    let accuracy = undefended.mean_client_accuracy(&split.test)?;

    // 3. Attack the global model with the loss-threshold MIA.
    let mut template = arch(&mut rng)?;
    let members = split.train.subset(&(0..200).collect::<Vec<_>>())?;
    let result = evaluate_attack(
        &mut LossThresholdAttack,
        undefended.global_params(),
        &mut template,
        &members,
        &split.test,
    )?;
    println!(
        "undefended: accuracy {:.1}%, attack AUC {:.1}% (50% is optimal privacy)",
        accuracy * 100.0,
        result.auc * 100.0
    );

    // 4. Same system with the DINAR middleware protecting the penultimate
    //    layer — uploads are obfuscated, clients keep personalized models.
    let private_layer = template.num_trainable_layers() - 2;
    let dinar_config = DinarConfig::default();
    let mut defended = FlSystem::builder(config)
        .clients_from_shards(shards, arch, |_| Box::new(Adagrad::new(0.05)))?
        .with_client_middleware(|id| {
            vec![Box::new(DinarMiddleware::new(
                private_layer,
                dinar_config,
                id as u64,
            ))]
        })
        .build()?;
    defended.run(8)?;
    let accuracy = defended.mean_client_accuracy(&split.test)?;
    let result = evaluate_attack(
        &mut LossThresholdAttack,
        defended.global_params(),
        &mut template,
        &members,
        &split.test,
    )?;
    println!(
        "with DINAR: accuracy {:.1}%, attack AUC {:.1}%",
        accuracy * 100.0,
        result.auc * 100.0
    );
    Ok(())
}

//! Cross-silo FL among banks (the paper's fraud-detection motivation):
//! compare what a curious aggregation server learns about each bank's
//! customers under no defense, secure aggregation, and DINAR.
//!
//! ```text
//! cargo run --release --example banking_defense_comparison
//! ```

use dinar_suite::attacks::evaluate_attack;
use dinar_suite::attacks::threshold::LossThresholdAttack;
use dinar_suite::core::middleware::DinarMiddleware;
use dinar_suite::core::DinarConfig;
use dinar_suite::data::catalog::{self, Profile};
use dinar_suite::data::partition::{partition_dataset, Distribution};
use dinar_suite::data::split::attack_split;
use dinar_suite::defenses::{SaGroup, SecureAggregation};
use dinar_suite::fl::{ClientMiddleware, FlConfig, FlSystem};
use dinar_suite::nn::{models, optim::Adagrad, Model};
use dinar_suite::tensor::Rng;
use std::sync::Arc;

enum Setup {
    NoDefense,
    SecureAggregation,
    Dinar,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(77);
    let banks = 5;

    // Purchase100-like transaction records (600 binary features).
    let dataset = catalog::purchase100(Profile::Mini).generate(&mut rng)?;
    let split = attack_split(&dataset, &mut rng)?;
    let shards = partition_dataset(&split.train, banks, Distribution::Iid, &mut rng)?;
    let arch = |rng: &mut Rng| -> dinar_suite::nn::Result<Model> {
        models::fcnn6(600, 100, 64, rng)
    };

    println!("5 banks, {} transactions each (approx.)\n", shards[0].len());
    println!("  setup       | server attack AUC on a bank's upload | bank accuracy");

    for setup in [Setup::NoDefense, Setup::SecureAggregation, Setup::Dinar] {
        let counts: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        let mut builder = FlSystem::builder(FlConfig {
            local_epochs: 5,
            batch_size: 64,
            seed: 3,
        })
        .clients_from_shards(shards.clone(), arch, |_| Box::new(Adagrad::new(0.05)))?;
        let label = match setup {
            Setup::NoDefense => "no defense",
            Setup::SecureAggregation => {
                let group = SaGroup::from_sample_counts(&counts, 9);
                builder = builder.with_client_middleware(move |_| {
                    vec![Box::new(SecureAggregation::new(Arc::clone(&group)))
                        as Box<dyn ClientMiddleware>]
                });
                "secure agg."
            }
            Setup::Dinar => {
                let config = DinarConfig::default();
                builder = builder.with_client_middleware(move |id| {
                    vec![Box::new(DinarMiddleware::new(4, config, id as u64))
                        as Box<dyn ClientMiddleware>]
                });
                "DINAR"
            }
        };
        let mut system = builder.build()?;
        system.run(10)?;

        // The curious server intercepts bank 0's next upload and runs a MIA
        // against that bank's customers.
        let global = system.global_params().clone();
        let bank = &mut system.clients_mut()[0];
        bank.receive_global(&global)?;
        bank.train_local()?;
        let upload = bank.produce_update()?.params;
        let bank_members = bank.data().clone();

        let mut template = arch(&mut rng)?;
        let attack = evaluate_attack(
            &mut LossThresholdAttack,
            &upload,
            &mut template,
            &bank_members,
            &split.test,
        )?;
        let accuracy = system.mean_client_accuracy(&split.test)?;
        println!(
            "  {label:<11} | {:>35.1}% | {:>12.1}%",
            attack.auc * 100.0,
            accuracy * 100.0
        );
    }
    println!("\n(50% attack AUC means the server learns nothing about membership)");
    Ok(())
}

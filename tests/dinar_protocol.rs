//! Protocol-level integration tests for DINAR's middleware semantics inside
//! a live FL system (Algorithm 1 + §4.1 consensus).

use dinar::init::{agree_on_layer, InitConfig};
use dinar::middleware::DinarMiddleware;
use dinar::DinarConfig;
use dinar_data::catalog::{self, Profile};
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_data::split::attack_split;
use dinar_data::Dataset;
use dinar_fl::{FlConfig, FlSystem};
use dinar_nn::{models, optim::Adagrad, Model};
use dinar_tensor::Rng;

const PRIVATE_LAYER: usize = 4;

fn arch(rng: &mut Rng) -> dinar_nn::Result<Model> {
    models::fcnn6(600, 100, 48, rng)
}

fn build_dinar_system(shards: Vec<Dataset>) -> FlSystem {
    let config = DinarConfig::default();
    FlSystem::builder(FlConfig {
        local_epochs: 2,
        batch_size: 64,
        seed: 21,
    })
    .clients_from_shards(shards, arch, |_| Box::new(Adagrad::new(0.05)))
    .unwrap()
    .with_client_middleware(move |id| {
        vec![Box::new(DinarMiddleware::new(
            PRIVATE_LAYER,
            config,
            id as u64,
        ))]
    })
    .build()
    .unwrap()
}

fn shards() -> Vec<Dataset> {
    let mut rng = Rng::seed_from(31);
    let dataset = catalog::purchase100(Profile::Mini)
        .generate(&mut rng)
        .unwrap();
    let split = attack_split(&dataset, &mut rng).unwrap();
    partition_dataset(&split.train, 3, Distribution::Iid, &mut rng).unwrap()
}

/// The server must never see a client's true private-layer parameters: every
/// upload's layer `p` differs from the client's live model layer `p`.
#[test]
fn uploads_never_contain_the_private_layer()  {
    let mut system = build_dinar_system(shards());
    system.run(2).unwrap();
    let global = system.global_params().clone();
    for client in system.clients_mut() {
        client.receive_global(&global).unwrap();
        client.train_local().unwrap();
        let upload = client.produce_update().unwrap().params;
        let live = client.model().params();
        // The private layer is obfuscated in the upload...
        let private_diff = upload.layers[PRIVATE_LAYER]
            .tensors
            .iter()
            .zip(&live.layers[PRIVATE_LAYER].tensors)
            .all(|(a, b)| a != b);
        assert!(private_diff, "private layer leaked in the upload");
        // ...while every other layer is uploaded verbatim.
        for (i, (up, lv)) in upload.layers.iter().zip(&live.layers).enumerate() {
            if i != PRIVATE_LAYER {
                assert_eq!(up, lv, "layer {i} should upload unchanged");
            }
        }
    }
}

/// Personalization: after receiving a global model, a client's private layer
/// equals its own stored parameters from the previous round, not the global
/// (obfuscated) values.
#[test]
fn personalization_restores_the_clients_own_layer() {
    let mut system = build_dinar_system(shards());
    system.run(1).unwrap();

    // Snapshot each client's live private layer after round 1.
    let before: Vec<_> = system
        .clients()
        .iter()
        .map(|c| c.model().params().layers[PRIVATE_LAYER].clone())
        .collect();

    // Deliver the new global model; the private layer must be restored.
    let global = system.global_params().clone();
    for (client, own) in system.clients_mut().iter_mut().zip(&before) {
        client.receive_global(&global).unwrap();
        let after = client.model().params();
        assert_eq!(
            &after.layers[PRIVATE_LAYER], own,
            "client lost its personalized layer"
        );
        // The global's obfuscated layer differs from what was installed.
        assert_ne!(
            global.layers[PRIVATE_LAYER], after.layers[PRIVATE_LAYER],
            "client installed the obfuscated global layer"
        );
    }
}

/// The initialization phase agrees on one layer across clients even with a
/// Byzantine minority, and the agreed index is a valid layer.
#[test]
fn initialization_consensus_with_byzantine_client() {
    let mut rng = Rng::seed_from(41);
    let dataset = catalog::purchase100(Profile::Mini)
        .generate(&mut rng)
        .unwrap();
    let split = attack_split(&dataset, &mut rng).unwrap();
    let shards = partition_dataset(&split.train, 4, Distribution::Iid, &mut rng).unwrap();
    let client_data: Vec<_> = shards
        .iter()
        .map(|s| {
            let mut r = rng.split(s.len() as u64);
            s.split_fraction(0.8, &mut r).unwrap()
        })
        .collect();
    let cfg = InitConfig {
        warmup_epochs: 6,
        ..InitConfig::default()
    };
    let layer = agree_on_layer(&client_data, arch, &[3], &cfg).unwrap();
    assert!(layer < 6, "agreed layer {layer} out of range");
}

/// Multi-layer DINAR round-trips correctly inside the engine.
#[test]
fn multi_layer_dinar_trains() {
    let config = DinarConfig::default();
    let mut system = FlSystem::builder(FlConfig {
        local_epochs: 1,
        batch_size: 64,
        seed: 5,
    })
    .clients_from_shards(shards(), arch, |_| Box::new(Adagrad::new(0.05)))
    .unwrap()
    .with_client_middleware(move |id| {
        vec![Box::new(DinarMiddleware::multi(
            vec![3, 4],
            config,
            id as u64,
        ))]
    })
    .build()
    .unwrap();
    let reports = system.run(3).unwrap();
    assert!(reports.iter().all(|r| r.mean_train_loss.is_finite()));
}

//! Parameter-plane invariants: copy-on-write tensor storage, O(1) `share()`
//! snapshots, O(model) aggregation memory, and the committed copy-reduction
//! evidence from `bench_params`.
//!
//! Like `tests/properties.rs`, the property tests are driven by the
//! workspace's own seeded RNG (a pure function of the loop index) instead of
//! a property-testing dependency.

use dinar_fl::{ClientUpdate, FlServer};
use dinar_nn::{LayerParams, ModelParams, ParamViewMut};
use dinar_tensor::alloc::{thread_live_bytes, MemoryScope};
use dinar_tensor::json::Json;
use dinar_tensor::{Rng, Tensor};
use std::path::Path;

const CASES: u64 = 64;

/// Per-case RNG: independent, reproducible stream per (property, case).
fn case_rng(property: u64, case: u64) -> Rng {
    Rng::seed_from(0xC0_4E00 + property * 10_007 + case)
}

fn random_shape(rng: &mut Rng) -> Vec<usize> {
    match rng.below(3) {
        0 => vec![1 + rng.below(48)],
        1 => vec![1 + rng.below(12), 1 + rng.below(12)],
        _ => vec![1 + rng.below(4), 1 + rng.below(6), 1 + rng.below(6)],
    }
}

// ----------------------------------------------------------------------
// Copy-on-write: clone-then-mutate never aliases
// ----------------------------------------------------------------------

#[test]
fn clone_then_mutate_never_aliases() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let shape = random_shape(&mut rng);
        let original = rng.randn(&shape);
        let before: Vec<u32> = original.as_slice().iter().map(|x| x.to_bits()).collect();

        // Exercise a different COW mutation point per case.
        let mut writer = original.clone();
        match case % 4 {
            0 => writer.as_mut_slice()[0] += 1.0,
            1 => writer.map_inplace(|x| x * 2.0 + 1.0),
            2 => writer.scale_inplace(-3.0),
            _ => writer.add_assign(&Tensor::ones(&shape)).unwrap(),
        }

        let after: Vec<u32> = original.as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(before, after, "case {case}: reader saw a writer's mutation");
        assert_ne!(
            writer.as_slice(),
            original.as_slice(),
            "case {case}: mutation had no effect"
        );
    }
}

#[test]
fn mutating_the_original_leaves_clones_intact() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let shape = random_shape(&mut rng);
        let mut original = rng.randn(&shape);
        let snapshot = original.clone();
        let before: Vec<u32> = snapshot.as_slice().iter().map(|x| x.to_bits()).collect();

        original.map_inplace(|x| x + 42.0);

        let after: Vec<u32> = snapshot.as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(before, after, "case {case}: snapshot drifted");
    }
}

#[test]
fn reshape_shares_storage_until_first_write() {
    let t = Tensor::ones(&[4, 6]);
    let live = thread_live_bytes();
    let mut flat = t.reshape(&[24]).unwrap();
    assert_eq!(thread_live_bytes(), live, "reshape must not copy");
    flat.as_mut_slice()[0] = 7.0;
    assert_eq!(
        thread_live_bytes(),
        live + 24 * 4,
        "first write materializes exactly one buffer"
    );
    assert_eq!(t.as_slice()[0], 1.0, "reader untouched by reshaped writer");
}

#[test]
fn model_params_share_is_free_and_isolated() {
    let mut rng = Rng::seed_from(9);
    let params = ModelParams::new(vec![
        LayerParams::new(vec![rng.randn(&[16, 8]), rng.randn(&[8])]),
        LayerParams::new(vec![rng.randn(&[8, 4])]),
    ]);
    let live = thread_live_bytes();
    let mut writer = params.share();
    assert_eq!(thread_live_bytes(), live, "share() must allocate nothing");
    ParamViewMut::of_model(&mut writer).for_each_slice_mut(|s| {
        for x in s {
            *x = 0.0;
        }
    });
    assert!(
        params.l2_norm() > 0.0,
        "writer's zeroing leaked into the shared snapshot"
    );
    assert_eq!(writer.l2_norm(), 0.0);
}

// ----------------------------------------------------------------------
// Aggregation memory: O(model), not O(clients × model)
// ----------------------------------------------------------------------

#[test]
fn aggregation_peak_memory_does_not_scale_with_client_count() {
    // Steady-state FedAvg accumulates into the recycled scratch buffer, so
    // the peak extra bytes attributable to aggregation are bounded by one
    // model — independent of how many clients report.
    let peak_for = |clients: usize| -> (u64, u64) {
        let mut rng = Rng::seed_from(77);
        let init = ModelParams::new(vec![LayerParams::new(vec![
            rng.randn(&[64, 64]),
            rng.randn(&[64]),
        ])]);
        let model_bytes = (init.param_count() * 4) as u64;
        // Distinct per-client buffers, as after real local training.
        let updates: Vec<ClientUpdate> = (0..clients)
            .map(|id| {
                let mut p = init.share();
                p.scale(1.0 + id as f32);
                ClientUpdate {
                    client_id: id,
                    params: p,
                    num_samples: 10,
                }
            })
            .collect();
        let mut server = FlServer::new(init);
        // Round 1 populates the scratch buffer; measure steady state.
        server.aggregate(&updates).unwrap();
        let scope = MemoryScope::enter();
        server.aggregate(&updates).unwrap();
        (scope.peak_extra_bytes(), model_bytes)
    };
    let (peak_small, model_bytes) = peak_for(4);
    let (peak_large, _) = peak_for(16);
    assert!(
        peak_large <= model_bytes,
        "steady-state aggregation allocated {peak_large} bytes (> one model of {model_bytes})"
    );
    assert_eq!(
        peak_small, peak_large,
        "aggregation peak memory scaled with the client count"
    );
}

// ----------------------------------------------------------------------
// Copy-reduction evidence: bench_params vs the committed baseline
// ----------------------------------------------------------------------

fn load_report(path: &Path) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{} must be committed (regenerate with `cargo run --release -p dinar-bench --bin bench_params`): {e}", path.display()));
    Json::parse(&text).expect("committed bench report parses")
}

#[test]
fn bench_params_shows_at_least_5x_copy_reduction() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let baseline = load_report(&root.join("bench-results/BENCH_params_baseline.json"));
    let current = load_report(&root.join("bench-results/BENCH_params.json"));
    let bytes = |r: &Json| {
        r.get("mean_copy_bytes_per_round")
            .and_then(Json::as_f64)
            .expect("report has mean_copy_bytes_per_round")
    };
    let (before, after) = (bytes(&baseline), bytes(&current));
    assert!(
        after * 5.0 <= before,
        "bytes cloned per round: {after:.0} is not ≥5× below the pre-refactor {before:.0}"
    );
}

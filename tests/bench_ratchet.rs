//! Perf ratchets over committed bench artifacts.
//!
//! Tensor kernels: the committed `bench-results/BENCH_tensor.json` must
//! keep showing the speedups the bulk-sampling + microkernel rewrite
//! bought, measured against the pre-rewrite numbers frozen below.
//!
//! Telemetry overhead: the committed `bench-results/BENCH_telemetry.json`
//! must keep showing that a fully instrumented FL training run stays
//! within [`TELEMETRY_OVERHEAD_CAP`] of the uninstrumented run —
//! observation is near-free, so no experiment has a perf reason to turn
//! telemetry off.
//!
//! Like `tests/param_plane.rs`, this ratchets the committed artifact rather
//! than timing inside the test — test-process timing is too noisy to gate
//! on, while the artifact is regenerated deliberately (single-threaded:
//! `DINAR_THREADS=1 cargo run --release -p dinar-bench --bin bench_tensor`)
//! and reviewed when committed. The reference constants are *not* read from
//! `BENCH_tensor_baseline.json` on purpose: that file tracks the current
//! accepted single-thread numbers and moves forward over time, whereas the
//! denominators here are the pre-rewrite scalar implementations and must
//! stay frozen for the ratchet to mean anything.

use dinar_tensor::json::Json;
use std::path::Path;

/// `randn(&[100_000])`, scalar Box–Muller through `gauss_cache`, one draw
/// per element (single thread, this repo's reference runner).
const PRE_REWRITE_RANDN_100K_NS: f64 = 1_900_000.0;
/// 128×128×128 `matmul`, cache-blocked loops without the register-blocked
/// FMA microkernel (single thread, same runner).
const PRE_REWRITE_MATMUL_128_NS: f64 = 285_970.0;

/// Instrumented / uninstrumented FL-run ratio the committed telemetry
/// bench must stay under: within 5%.
const TELEMETRY_OVERHEAD_CAP: f64 = 1.05;

fn load_entries(path: &Path) -> Vec<(String, String, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "{} must be committed (regenerate with `DINAR_THREADS=1 cargo run \
             --release -p dinar-bench --bin bench_{}`): {e}",
            path.display(),
            if path.ends_with("BENCH_telemetry.json") { "telemetry" } else { "tensor" },
        )
    });
    let json = Json::parse(&text).expect("committed bench report parses");
    json.get("entries")
        .and_then(Json::as_arr)
        .expect("report has entries")
        .iter()
        .map(|row| {
            let field = |k: &str| {
                row.get(k)
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| panic!("row missing {k}"))
                    .to_string()
            };
            let ns = row
                .get("ns_per_iter")
                .and_then(Json::as_f64)
                .expect("row has ns_per_iter");
            (field("op"), field("size"), ns)
        })
        .collect()
}

fn ns_for(entries: &[(String, String, f64)], op: &str, size: &str) -> f64 {
    entries
        .iter()
        .find(|(o, s, _)| o == op && s == size)
        .unwrap_or_else(|| panic!("committed bench report has no {op}/{size} row"))
        .2
}

#[test]
fn bulk_sampler_holds_4x_over_scalar_draws() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let entries = load_entries(&root.join("bench-results/BENCH_tensor.json"));
    let ns = ns_for(&entries, "randn", "100k");
    assert!(
        ns * 4.0 <= PRE_REWRITE_RANDN_100K_NS,
        "randn 100k at {ns:.0} ns/iter is not ≥4× under the pre-rewrite \
         {PRE_REWRITE_RANDN_100K_NS:.0} ns/iter"
    );
}

#[test]
fn microkernel_matmul_holds_2x_over_blocked_loops() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let entries = load_entries(&root.join("bench-results/BENCH_tensor.json"));
    let ns = ns_for(&entries, "matmul", "128x128x128");
    assert!(
        ns * 2.0 <= PRE_REWRITE_MATMUL_128_NS,
        "matmul 128³ at {ns:.0} ns/iter is not ≥2× under the pre-rewrite \
         {PRE_REWRITE_MATMUL_128_NS:.0} ns/iter"
    );
}

#[test]
fn instrumented_fl_run_stays_within_five_percent_of_uninstrumented() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let entries = load_entries(&root.join("bench-results/BENCH_telemetry.json"));
    let size = "2c2r";
    let with_tel = ns_for(&entries, "fl_run_instrumented", size);
    let without = ns_for(&entries, "fl_run_uninstrumented", size);
    assert!(without > 0.0, "uninstrumented row is empty");
    assert!(
        with_tel <= without * TELEMETRY_OVERHEAD_CAP,
        "instrumented FL run at {with_tel:.0} ns is {:.2}% over the \
         uninstrumented {without:.0} ns — telemetry overhead broke the \
         {TELEMETRY_OVERHEAD_CAP}x ratchet",
        (with_tel / without - 1.0) * 100.0
    );
}

#[test]
fn telemetry_rows_cover_recorder_ledger_and_exporters() {
    // The suite must keep pricing the observability primitives: the armed
    // flight-recorder event, the deterministic counter, the span pair, the
    // ledger charge, and both exporters. Bounds are sanity checks (well
    // above measured values), not ratchets: a primitive that suddenly
    // costs microseconds has lost its lock-free/O(1) implementation.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let entries = load_entries(&root.join("bench-results/BENCH_telemetry.json"));
    for (op, size, max_ns) in [
        ("flight_record", "1", 10_000.0),
        ("counter_add", "1", 10_000.0),
        ("span_enter_exit", "1", 50_000.0),
        ("privacy_charge", "1", 10_000.0),
        ("trace_export", "1024_spans", 1e9),
        ("jsonl_export", "1024_spans", 1e9),
        ("flight_dump", "4096_events", 1e9),
    ] {
        let ns = ns_for(&entries, op, size);
        assert!(ns > 0.0, "{op} row is empty");
        assert!(ns <= max_ns, "{op} at {ns:.0} ns/iter exceeds {max_ns:.0}");
    }
}

/// Minimum uplink compression the 1-bit sign codec must keep delivering
/// over the raw-f32 wire baseline. The theoretical ceiling is 32× (one bit
/// per f32) minus framing and per-tensor scales; the committed artifact
/// measures ~31.6×, so 8× leaves generous headroom while still catching a
/// regression to un-packed or un-delta'd uploads.
const WIRE_SIGN1_MIN_RATIO: f64 = 8.0;

#[test]
fn wire_compression_ratio_holds_8x() {
    // Unlike the timing ratchets above, bytes-per-round is a pure function
    // of the model architecture and codec — the committed artifact is
    // bit-reproducible, so this ratchet can sit close to exact.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join("bench-results/BENCH_wire.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{} must be committed (regenerate with `cargo run --release -p \
             dinar-bench --bin bench_wire`): {e}",
            path.display()
        )
    });
    let json = Json::parse(&text).expect("committed wire report parses");
    let rows = json.as_arr().expect("wire report is an array of rows");
    let up_bytes = |codec: &str| -> f64 {
        rows.iter()
            .find(|r| r.get("codec").and_then(Json::as_str) == Some(codec))
            .unwrap_or_else(|| panic!("wire report has no {codec} row"))
            .get("bytes_up_per_round")
            .and_then(Json::as_f64)
            .expect("row has bytes_up_per_round")
    };
    let f32_up = up_bytes("f32");
    let sign1_up = up_bytes("sign1");
    assert!(f32_up > 0.0 && sign1_up > 0.0, "empty byte columns");
    let ratio = f32_up / sign1_up;
    assert!(
        ratio >= WIRE_SIGN1_MIN_RATIO,
        "sign1 uplink at {sign1_up:.0} B/round vs f32 {f32_up:.0} B/round \
         is only {ratio:.1}x — below the {WIRE_SIGN1_MIN_RATIO}x wire ratchet"
    );
    // The quantized-i8 path must also beat raw f32 (≈4× minus framing).
    let qi8 = up_bytes("quant_i8");
    assert!(
        f32_up / qi8 >= 3.0,
        "quant_i8 uplink compression fell under 3x ({:.1}x)",
        f32_up / qi8
    );
}

/// Minimum resident-weight-bytes shrink the quant_i8 serving path must
/// keep delivering over f32 serving. The theoretical ceiling is 4× (one
/// i8 per f32) minus the per-tensor scale and the always-dense biases;
/// the committed artifact measures ~3.98×, so 2× leaves headroom while
/// still catching a regression to widened-at-load storage.
const SERVE_I8_MIN_BYTES_RATIO: f64 = 2.0;

#[test]
fn i8_serving_halves_resident_weight_bytes() {
    // Resident bytes are a pure function of the architecture and dtype, so
    // that column is bit-reproducible; throughput is measured, so its bound
    // is a generous sanity floor (the artifact shows i8 at parity or
    // better — dequantize-into-pooled-scratch never dominates the matmul).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join("bench-results/BENCH_serve.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{} must be committed (regenerate with `DINAR_THREADS=1 cargo run \
             --release -p dinar-bench --bin bench_serve`): {e}",
            path.display()
        )
    });
    let json = Json::parse(&text).expect("committed serve report parses");
    let rows = json.as_arr().expect("serve report is an array of rows");
    let row = |storage: &str| {
        rows.iter()
            .find(|r| r.get("storage").and_then(Json::as_str) == Some(storage))
            .unwrap_or_else(|| panic!("serve report has no {storage} row"))
    };
    let field = |storage: &str, key: &str| -> f64 {
        row(storage)
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{storage} row missing {key}"))
    };
    let f32_bytes = field("f32", "resident_weight_bytes");
    let i8_bytes = field("quant_i8", "resident_weight_bytes");
    assert!(f32_bytes > 0.0 && i8_bytes > 0.0, "empty byte columns");
    let ratio = f32_bytes / i8_bytes;
    assert!(
        ratio >= SERVE_I8_MIN_BYTES_RATIO,
        "quant_i8 serving at {i8_bytes:.0} resident B vs f32 {f32_bytes:.0} B \
         is only {ratio:.2}x smaller — below the {SERVE_I8_MIN_BYTES_RATIO}x \
         serving ratchet"
    );
    // "At equal batch throughput": the quantized path must not buy its
    // memory shrink with serving speed. Half of f32 throughput is a loose
    // floor against timing noise; the artifact measures ≥1× in practice.
    let f32_rps = field("f32", "rows_per_s");
    let i8_rps = field("quant_i8", "rows_per_s");
    assert!(
        i8_rps >= 0.5 * f32_rps,
        "quant_i8 serving at {i8_rps:.0} rows/s fell under half the f32 \
         throughput ({f32_rps:.0} rows/s)"
    );
}

#[test]
fn sampler_rows_cover_the_allocation_free_paths() {
    // The suite must keep reporting the allocation-free sampler entry
    // points; their per-element cost is what the defenses actually pay.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let entries = load_entries(&root.join("bench-results/BENCH_tensor.json"));
    for op in ["randn_into", "fill_normal"] {
        let ns = ns_for(&entries, op, "100k");
        assert!(ns > 0.0, "{op} row is empty");
        // Sanity bound, not a ratchet: 10 ns/element leaves 2–3× headroom
        // over the measured ~3.5 ns/element without flaking across runners.
        assert!(
            ns <= 1_000_000.0,
            "{op} 100k at {ns:.0} ns/iter exceeds 10 ns/element"
        );
    }
}

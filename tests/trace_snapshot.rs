//! Golden-snapshot gate for the Perfetto trace-event export.
//!
//! Runs the same tiny deterministic FL round as `tests/telemetry_snapshot.rs`
//! (2 clients, fixed seeds, [`ManualClock`], pool width pinned to 1) and
//! compares the rendered trace-event JSON byte-for-byte against the
//! committed golden file. Any change to the B/E pairing, pid/tid derivation,
//! field order, or timestamp computation shows up as a diff here and must be
//! reviewed by regenerating the golden:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test trace_snapshot
//! ```
//!
//! This file holds exactly one test so the width pin cannot race another
//! test in the same binary.

use dinar_data::Dataset;
use dinar_fl::{FlConfig, FlSystem};
use dinar_nn::models::{self, Activation};
use dinar_nn::Model;
use dinar_telemetry::{export, ManualClock, Telemetry};
use dinar_tensor::{par, Rng, Tensor};
use std::path::Path;
use std::sync::Arc;

const GOLDEN: &str = "tests/golden/trace_fl_round.json";

/// A tiny two-blob classification shard, deterministic in `seed`.
fn blob_shard(n: usize, seed: u64) -> Dataset {
    let mut rng = Rng::seed_from(seed);
    let mut features = Tensor::zeros(&[n, 2]);
    let mut labels = Vec::new();
    for i in 0..n {
        let class = i % 2;
        let c = if class == 0 { -2.0 } else { 2.0 };
        features.set(&[i, 0], rng.normal_with(c, 0.5)).unwrap();
        features.set(&[i, 1], rng.normal_with(c, 0.5)).unwrap();
        labels.push(class);
    }
    Dataset::new(features, labels, &[2], 2).unwrap()
}

#[test]
fn trace_events_match_golden_snapshot() {
    par::set_threads(1);
    let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
    let arch = |rng: &mut Rng| -> dinar_nn::Result<Model> {
        models::mlp(&[2, 4, 2], Activation::ReLU, rng)
    };
    let mut system = FlSystem::builder(FlConfig {
        local_epochs: 1,
        batch_size: 8,
        seed: 5,
    })
    .clients_from_shards(vec![blob_shard(8, 1), blob_shard(8, 2)], arch, |_| {
        Box::new(dinar_nn::optim::Sgd::new(0.1))
    })
    .expect("clients built")
    .build()
    .expect("system built");
    system.set_telemetry(tel.clone());
    system.run_round().expect("round");
    par::reset_threads();

    let actual = export::trace_events(&tel);
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let golden_path = root.join(GOLDEN);

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &actual).unwrap();
        eprintln!("regenerated {GOLDEN}");
        return;
    }

    let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN} ({e}); regenerate with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        actual, expected,
        "\ntrace export drifted from {GOLDEN}.\nIf the change is \
         intentional, regenerate with\n    UPDATE_GOLDEN=1 cargo test --test \
         trace_snapshot\nand commit the diff.\n"
    );
}

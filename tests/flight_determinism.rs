//! Flight-recorder determinism contract: the black-box dump produced after
//! a forced mid-round client death must be byte-identical at every
//! worker-pool width.
//!
//! This is the postmortem analogue of `tests/telemetry_determinism.rs`: a
//! flight dump is only trustworthy evidence if re-running the same seeds and
//! the same [`FaultPlan`] reproduces it bit-for-bit, regardless of how many
//! worker threads the failing run happened to use. Events are ordered by
//! per-tuple sequence ordinals (not arrival order), so the sorted JSONL is
//! stable even though threads interleave differently per width.

use dinar_fl::clock::ManualClock as FlManualClock;
use dinar_fl::{run_threaded_resilient, FaultPlan, FlConfig, FlSystem, Quorum, RoundPolicy};
use dinar_nn::models::{self, Activation};
use dinar_nn::optim::Sgd;
use dinar_telemetry::{ManualClock, Telemetry};
use dinar_tensor::{par, Rng, Tensor};
use std::sync::{Arc, Mutex};

/// Serializes mutations of the process-global pool width across tests.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 3] = [1, 2, 4];

fn per_width<T>(f: impl Fn() -> T) -> Vec<T> {
    let _guard = WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let results = WIDTHS
        .iter()
        .map(|&w| {
            par::set_threads(w);
            f()
        })
        .collect();
    par::reset_threads();
    results
}

fn blob_dataset(n: usize, seed: u64) -> dinar_data::Dataset {
    let mut rng = Rng::seed_from(seed);
    let mut features = Tensor::zeros(&[n, 2]);
    let mut labels = Vec::new();
    for i in 0..n {
        let class = i % 2;
        let c = if class == 0 { -2.0 } else { 2.0 };
        features.set(&[i, 0], rng.normal_with(c, 0.6)).expect("set");
        features.set(&[i, 1], rng.normal_with(c, 0.6)).expect("set");
        labels.push(class);
    }
    dinar_data::Dataset::new(features, labels, &[2], 2).expect("dataset")
}

fn build_system() -> FlSystem {
    let data = blob_dataset(90, 5);
    let mut rng = Rng::seed_from(9);
    let shards = dinar_data::partition::partition_dataset(
        &data,
        3,
        dinar_data::partition::Distribution::Iid,
        &mut rng,
    )
    .expect("partition");
    FlSystem::builder(FlConfig {
        local_epochs: 2,
        batch_size: 16,
        seed: 3,
    })
    .clients_from_shards(
        shards,
        |rng| models::mlp(&[2, 8, 2], Activation::ReLU, rng),
        |_| Box::new(Sgd::new(0.1)),
    )
    .expect("clients")
    .build()
    .expect("system")
}

#[test]
fn flight_dump_after_client_death_is_bit_identical_across_widths() {
    let results = per_width(|| {
        let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
        tel.flight_arm();
        let mut system = build_system();
        system.set_telemetry(tel.clone());
        let policy = RoundPolicy::with_quorum(Quorum::AtLeast(2), None)
            .with_faults(FaultPlan::new().crash(1, 2));
        let run = run_threaded_resilient(system, 3, Arc::new(FlManualClock::new()), policy)
            .expect("quorum run survives the crash");
        assert_eq!(run.reports.len(), 3, "run did not complete all rounds");
        assert_eq!(run.fault_stats[1].clients_dropped, 1, "crash did not fire");
        tel.flight_dump_jsonl()
    });

    for (w, dump) in WIDTHS.iter().zip(&results).skip(1) {
        assert_eq!(
            dump, &results[0],
            "flight dump diverged at {w} threads — the postmortem record is \
             no longer reproducible evidence"
        );
    }

    // The dump must actually contain the story of the failure: events from
    // the healthy rounds and the transport's fault accounting.
    let dump = &results[0];
    assert!(!dump.is_empty(), "armed flight ring recorded nothing");
    assert!(
        dump.contains("fl.transport"),
        "flight dump is missing the transport fault counters:\n{dump}"
    );
    for line in dump.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "flight dump line is not a JSON object: {line}"
        );
    }
}

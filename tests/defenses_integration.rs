//! Integration tests for the baseline defenses inside a live FL system.

use dinar_data::catalog::{self, Profile};
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_data::split::attack_split;
use dinar_data::Dataset;
use dinar_defenses::{
    DpOptimizer, DpParams, GradientCompression, SaGroup, SecureAggregation, WeakDp,
};
use dinar_fl::{ClientMiddleware, FlConfig, FlSystem};
use dinar_nn::{models, optim::Adagrad, Model};
use dinar_tensor::Rng;
use std::sync::Arc;

fn setup() -> (Vec<Dataset>, Dataset) {
    let mut rng = Rng::seed_from(99);
    let dataset = catalog::purchase100(Profile::Mini)
        .generate(&mut rng)
        .unwrap();
    let split = attack_split(&dataset, &mut rng).unwrap();
    let shards = partition_dataset(&split.train, 4, Distribution::Iid, &mut rng).unwrap();
    (shards, split.test)
}

fn arch(rng: &mut Rng) -> dinar_nn::Result<Model> {
    models::fcnn6(600, 100, 48, rng)
}

fn config() -> FlConfig {
    FlConfig {
        local_epochs: 2,
        batch_size: 64,
        seed: 8,
    }
}

/// Secure aggregation must be *exact*: the aggregated global model equals
/// the unmasked FedAvg bit-for-bit (up to float round-off), even though each
/// individual upload is masked garbage.
#[test]
fn secure_aggregation_preserves_the_aggregate_exactly() {
    let (shards, _) = setup();
    let run = |masked: bool| {
        let counts: Vec<usize> = shards.iter().map(Dataset::len).collect();
        let mut builder = FlSystem::builder(config())
            .clients_from_shards(shards.clone(), arch, |_| Box::new(Adagrad::new(0.05)))
            .unwrap();
        if masked {
            let group = SaGroup::from_sample_counts(&counts, 13);
            builder = builder.with_client_middleware(move |_| {
                vec![Box::new(SecureAggregation::new(Arc::clone(&group)))
                    as Box<dyn ClientMiddleware>]
            });
        }
        let mut system = builder.build().unwrap();
        system.run(2).unwrap();
        system.global_params().clone()
    };
    let clear = run(false);
    let masked = run(true);
    let err = clear.max_abs_diff(&masked).unwrap();
    assert!(err < 1e-2, "masking changed the aggregate by {err}");
}

#[test]
fn secure_aggregation_masks_individual_uploads() {
    let (shards, _) = setup();
    let counts: Vec<usize> = shards.iter().map(Dataset::len).collect();
    let group = SaGroup::from_sample_counts(&counts, 13);
    let mut system = FlSystem::builder(config())
        .clients_from_shards(shards, arch, |_| Box::new(Adagrad::new(0.05)))
        .unwrap()
        .with_client_middleware(move |_| {
            vec![Box::new(SecureAggregation::new(Arc::clone(&group)))
                as Box<dyn ClientMiddleware>]
        })
        .build()
        .unwrap();
    let global = system.global_params().clone();
    let client = &mut system.clients_mut()[0];
    client.receive_global(&global).unwrap();
    client.train_local().unwrap();
    let upload = client.produce_update().unwrap().params;
    // The upload should be far from the (unmasked) trained model.
    let trained = client.model().params();
    let dev = upload.sub(&trained).unwrap().l2_norm();
    assert!(dev > 100.0, "mask too weak: deviation {dev}");
}

#[test]
fn gradient_compression_uploads_are_sparse_updates() {
    let (shards, _) = setup();
    let mut system = FlSystem::builder(config())
        .clients_from_shards(shards, arch, |_| Box::new(Adagrad::new(0.05)))
        .unwrap()
        .with_client_middleware(|_| {
            vec![Box::new(GradientCompression::new(0.1).with_error_feedback(false))
                as Box<dyn ClientMiddleware>]
        })
        .build()
        .unwrap();
    let global = system.global_params().clone();
    let client = &mut system.clients_mut()[0];
    client.receive_global(&global).unwrap();
    client.train_local().unwrap();
    let upload = client.produce_update().unwrap().params;
    // The update (upload - global) must have ~90% zero entries.
    let update = upload.sub(&global).unwrap();
    let flat = update.to_flat();
    let nonzero = flat.iter().filter(|&&x| x != 0.0).count();
    let ratio = nonzero as f32 / flat.len() as f32;
    assert!(
        (0.05..=0.12).contains(&ratio),
        "expected ~10% nonzero update entries, got {ratio}"
    );
}

#[test]
fn wdp_bounds_every_upload() {
    let (shards, _) = setup();
    let mut system = FlSystem::builder(config())
        .clients_from_shards(shards, arch, |_| Box::new(Adagrad::new(0.05)))
        .unwrap()
        .with_client_middleware(|id| {
            vec![Box::new(WeakDp::paper_default(Rng::seed_from(id as u64)))
                as Box<dyn ClientMiddleware>]
        })
        .build()
        .unwrap();
    system.run(1).unwrap();
    let global = system.global_params().clone();
    for client in system.clients_mut() {
        client.receive_global(&global).unwrap();
        client.train_local().unwrap();
        let upload = client.produce_update().unwrap().params;
        let update_norm = upload.sub(&global).unwrap().l2_norm();
        // Norm bound 5 plus the sigma=0.025 noise.
        assert!(update_norm < 7.0, "update norm {update_norm} exceeds bound");
    }
}

#[test]
fn dp_sgd_training_still_converges_somewhat() {
    let (shards, test) = setup();
    let mut system = FlSystem::builder(config())
        .clients_from_shards(shards, arch, |id| {
            Box::new(
                DpOptimizer::new(
                    Box::new(dinar_nn::optim::Adam::new(1e-3)),
                    DpParams::paper_default(),
                    Rng::seed_from(id as u64),
                )
                .with_amortization_over(2),
            )
        })
        .unwrap()
        .build()
        .unwrap();
    let reports = system.run(8).unwrap();
    // Noisy but not divergent: losses stay finite and still trend downward
    // despite the injected noise (DP-SGD learns, just slowly).
    assert!(reports.iter().all(|r| r.mean_train_loss.is_finite()));
    let first = reports.first().unwrap().mean_train_loss;
    let last = reports.last().unwrap().mean_train_loss;
    assert!(
        last < first,
        "DP-SGD loss should still decrease: {first} -> {last}"
    );
    let acc = system.mean_client_accuracy(&test).unwrap();
    assert!((0.0..=1.0).contains(&acc));
}

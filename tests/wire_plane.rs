//! The wire plane, end to end: tensor/model codec round-trips, corrupted
//! byte streams, and pool-width bit-identity of FL rounds whose every
//! model crosses the simulated network as encoded bytes.
//!
//! These tests also run under `--features sanitize`: the wire codec moves
//! raw bit patterns without arithmetic, so even non-finite payloads
//! round-trip without tripping the kernel sanitizers.

use dinar_fl::clock::ManualClock;
use dinar_fl::netsim::{Codec, LinkModel, NetworkModel};
use dinar_fl::{run_threaded_wire, FlConfig, FlSystem, ResilientRun, RoundPolicy, WireConfig};
use dinar_nn::models::{self, Activation};
use dinar_nn::optim::Sgd;
use dinar_nn::snapshot::{decode_params, encode_params};
use dinar_tensor::wire::{decode_tensor, encode_tensor, read_header, write_header, ByteReader, ByteWriter};
use dinar_tensor::{par, Rng, Tensor};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Serializes mutations of the process-global pool width across tests.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 3] = [1, 2, 4];

const ALL_CODECS: [Codec; 3] = [Codec::F32, Codec::Sign1, Codec::QuantI8];

/// Runs `f` once per width in [`WIDTHS`] and returns the results in order,
/// restoring the default width afterwards.
fn per_width<T>(f: impl Fn() -> T) -> Vec<T> {
    let _guard = WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let results = WIDTHS
        .iter()
        .map(|&w| {
            par::set_threads(w);
            f()
        })
        .collect();
    par::reset_threads();
    results
}

fn tensor_roundtrip(t: &Tensor, codec: Codec) -> Tensor {
    let mut w = ByteWriter::with_capacity(64);
    write_header(&mut w, codec);
    encode_tensor(t, codec, &mut w).expect("encode");
    let bytes = w.into_bytes();
    let mut r = ByteReader::new(&bytes);
    let decoded_codec = read_header(&mut r).expect("header");
    assert_eq!(decoded_codec, codec);
    let back = decode_tensor(&mut r, codec).expect("decode");
    r.finish().expect("no trailing bytes");
    back
}

/// Lossless round-trips are bit-identical over every shape class the
/// transport can produce: empty tensors, odd lengths that exercise the
/// sign-bit padding, and multi-dimensional shapes.
#[test]
fn f32_roundtrip_is_bit_identical_over_shape_classes() {
    let mut rng = Rng::seed_from(11);
    let shapes: Vec<Vec<usize>> = vec![
        vec![0],
        vec![1],
        vec![3],
        vec![7],
        vec![9],
        vec![15],
        vec![8, 0],
        vec![2, 3, 5],
        vec![1, 1, 1, 1],
        vec![64],
    ];
    for shape in &shapes {
        let t = rng.randn(shape);
        let back = tensor_roundtrip(&t, Codec::F32);
        assert_eq!(back.shape(), t.shape(), "{shape:?}");
        let bits: Vec<u32> = t.as_slice().iter().map(|x| x.to_bits()).collect();
        let back_bits: Vec<u32> = back.as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits, back_bits, "{shape:?}");
    }
}

/// Non-finite and subnormal payloads cross the lossless wire bit-exactly —
/// the codec moves bit patterns, not numbers (and under
/// `--features sanitize` this stays true: no kernel arithmetic runs).
#[test]
fn f32_roundtrip_preserves_nonfinite_bit_patterns() {
    let payload: Vec<f32> = [
        f32::NAN.to_bits(),
        (f32::NAN.to_bits() | 0x8000_0000),
        f32::INFINITY.to_bits(),
        f32::NEG_INFINITY.to_bits(),
        0x0000_0001, // smallest positive subnormal
        0x807F_FFFF, // largest negative subnormal
        0x8000_0000, // -0.0
        f32::MAX.to_bits(),
    ]
    .iter()
    .map(|&b| f32::from_bits(b))
    .collect();
    let t = Tensor::from_vec(payload.clone(), &[payload.len()]).expect("tensor");
    let back = tensor_roundtrip(&t, Codec::F32);
    for (a, b) in payload.iter().zip(back.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "{a} lost its bit pattern");
    }
}

/// The lossy codecs round-trip every shape class to the right shape, and
/// re-encoding their own decode is a fixed point (idempotent on the
/// quantization grid).
#[test]
fn lossy_codecs_roundtrip_shapes_and_are_idempotent() {
    let mut rng = Rng::seed_from(12);
    for codec in [Codec::Sign1, Codec::QuantI8] {
        for shape in [vec![0], vec![1], vec![7], vec![9], vec![4, 3]] {
            let t = rng.randn(&shape);
            let once = tensor_roundtrip(&t, codec);
            assert_eq!(once.shape(), t.shape(), "{codec:?} {shape:?}");
            let twice = tensor_roundtrip(&once, codec);
            let a: Vec<u32> = once.as_slice().iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = twice.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "{codec:?} {shape:?} not idempotent");
        }
    }
}

/// Seeded fuzz over corrupted model streams: every truncation and a spread
/// of random bit flips must return a typed error or decode garbage — and
/// never panic, allocate absurdly, or loop.
#[test]
fn corrupted_model_streams_never_panic() {
    let mut rng = Rng::seed_from(99);
    let params = models::mlp(&[6, 5, 4], Activation::ReLU, &mut rng)
        .expect("model")
        .params();
    for codec in ALL_CODECS {
        let bytes = encode_params(&params, codec).expect("encode");
        // Every strict prefix errors (no partial decode is valid).
        for cut in 0..bytes.len() {
            assert!(
                decode_params(&bytes[..cut]).is_err(),
                "{codec:?}: prefix of {cut} bytes decoded"
            );
        }
        // Random multi-byte corruption: decode must return, not panic.
        for trial in 0..200u64 {
            let mut corrupt = bytes.clone();
            let flips = 1 + (trial % 4) as usize;
            for f in 0..flips {
                let r = rng.next_u64() ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(f as u64);
                let idx = (r as usize) % corrupt.len();
                corrupt[idx] ^= (1u8) << (r >> 32 & 7);
            }
            let _ = decode_params(&corrupt); // Ok(garbage) or Err — both fine
        }
    }
}

fn build_system() -> FlSystem {
    let data = {
        let mut rng = Rng::seed_from(5);
        let mut features = Tensor::zeros(&[90, 2]);
        let mut labels = Vec::new();
        for i in 0..90 {
            let class = i % 2;
            let c = if class == 0 { -2.0 } else { 2.0 };
            features.set(&[i, 0], rng.normal_with(c, 0.6)).expect("set");
            features.set(&[i, 1], rng.normal_with(c, 0.6)).expect("set");
            labels.push(class);
        }
        dinar_data::Dataset::new(features, labels, &[2], 2).expect("dataset")
    };
    let mut rng = Rng::seed_from(9);
    let shards = dinar_data::partition::partition_dataset(
        &data,
        3,
        dinar_data::partition::Distribution::Iid,
        &mut rng,
    )
    .expect("partition");
    FlSystem::builder(FlConfig {
        local_epochs: 2,
        batch_size: 16,
        seed: 3,
    })
    .clients_from_shards(
        shards,
        |rng| models::mlp(&[2, 8, 2], Activation::ReLU, rng),
        |_| Box::new(Sgd::new(0.1)),
    )
    .expect("clients")
    .build()
    .expect("system")
}

fn global_bits(run: &ResilientRun) -> Vec<u32> {
    run.system
        .global_params()
        .to_flat()
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

/// A slow, asymmetric simulated network with one straggler override.
fn test_network() -> NetworkModel {
    NetworkModel::uniform(Duration::from_millis(5), 1_000_000).with_client(
        2,
        dinar_fl::ClientLink {
            down: LinkModel::new(Duration::from_millis(20), 500_000),
            up: LinkModel::new(Duration::from_millis(40), 250_000),
        },
    )
}

fn wire_run(uplink: Codec) -> ResilientRun {
    let wire = WireConfig::lossless()
        .with_uplink(uplink)
        .with_network(test_network());
    run_threaded_wire(
        build_system(),
        3,
        Arc::new(ManualClock::new()),
        RoundPolicy::strict(),
        wire,
    )
    .expect("wire run")
}

/// The flagship determinism contract: for every codec, an FL run whose
/// every model crosses the simulated network as encoded bytes produces a
/// bit-identical global model — and bit-identical wire accounting — for
/// any worker-pool width.
#[test]
fn wire_runs_are_bit_identical_across_pool_widths() {
    for codec in ALL_CODECS {
        let runs = per_width(|| wire_run(codec));
        let bits: Vec<Vec<u32>> = runs.iter().map(global_bits).collect();
        assert_eq!(bits[0], bits[1], "{codec:?}: width 1 vs 2 diverged");
        assert_eq!(bits[1], bits[2], "{codec:?}: width 2 vs 4 diverged");
        let stats: Vec<_> = runs.iter().map(|r| r.wire_stats.clone()).collect();
        assert_eq!(stats[0], stats[1], "{codec:?}: wire stats diverged");
        assert_eq!(stats[1], stats[2], "{codec:?}: wire stats diverged");
    }
}

/// The lossless wire run equals the in-process sequential engine bit for
/// bit: raw-f32 frames carry exact bit patterns, so routing every model
/// through encode → link → decode changes nothing.
#[test]
fn lossless_wire_run_matches_sequential_exactly() {
    let mut sequential = build_system();
    sequential.run(3).expect("sequential");
    let run = wire_run(Codec::F32);
    let diff = sequential
        .global_params()
        .max_abs_diff(run.system.global_params())
        .expect("diff");
    assert_eq!(diff, 0.0, "lossless wire run diverged by {diff}");
}

/// Lossy uplinks still learn (error feedback keeps the aggregate close)
/// while moving far fewer bytes than the raw-f32 baseline.
#[test]
fn lossy_uplinks_compress_and_still_learn() {
    let f32_run = wire_run(Codec::F32);
    let f32_up: u64 = f32_run.wire_stats.iter().map(|s| s.bytes_up).sum();
    // The 42-parameter test model is framing-dominated, so only modest
    // floors hold here (sign1 measures 2.8×, i8 1.9×); the headline ≥8×
    // ratio is ratcheted on a realistically-sized model by
    // tests/bench_ratchet.rs.
    for (codec, num, den) in [(Codec::Sign1, 2, 1), (Codec::QuantI8, 3, 2)] {
        let run = wire_run(codec);
        assert_eq!(run.reports.len(), 3, "{codec:?}");
        let up: u64 = run.wire_stats.iter().map(|s| s.bytes_up).sum();
        assert!(
            up * num < f32_up * den,
            "{codec:?} moved {up} uplink bytes vs f32's {f32_up} — no compression"
        );
        let first = run.reports.first().expect("reports").mean_train_loss;
        let last = run.reports.last().expect("reports").mean_train_loss;
        assert!(
            last < first,
            "{codec:?}: loss did not improve ({first} -> {last})"
        );
    }
}

/// The simulated network's timings are deterministic and reflect the link
/// models: the straggler's slow path dominates the makespan, and byte
/// accounting matches `frames × frame sizes`.
#[test]
fn simulated_network_prices_rounds_deterministically() {
    let run = wire_run(Codec::F32);
    assert_eq!(run.wire_stats.len(), 3);
    for s in &run.wire_stats {
        assert_eq!(s.frames, 6, "3 broadcasts down + 3 updates up");
        assert!(s.bytes_down > 0 && s.bytes_up > 0);
        // Healthy lossless rounds are symmetric: 3 equal frames each way.
        assert_eq!(s.bytes_down, s.bytes_up);
        let frame = s.bytes_down / 3;
        // Straggler path: down 20ms + B/500k, up 40ms + B/250k — strictly
        // the slowest, so it is the makespan.
        let expect = Duration::from_millis(60)
            + Duration::from_nanos(frame * 2_000 + frame * 4_000);
        assert_eq!(s.sim_elapsed, expect, "round {}", s.round);
    }
    // Identical rounds price identically.
    assert_eq!(run.wire_stats[0].sim_elapsed, run.wire_stats[1].sim_elapsed);
}

/// Wire telemetry lands under the stable `fl.transport.*` names and sums
/// over rounds.
#[test]
fn wire_telemetry_counters_sum_over_rounds() {
    let telemetry = dinar_telemetry::Telemetry::new();
    let mut system = build_system();
    system.set_telemetry(telemetry.clone());
    let wire = WireConfig::lossless().with_network(test_network());
    let run = run_threaded_wire(
        system,
        2,
        Arc::new(ManualClock::new()),
        RoundPolicy::strict(),
        wire,
    )
    .expect("wire run");
    let down: u64 = run.wire_stats.iter().map(|s| s.bytes_down).sum();
    let up: u64 = run.wire_stats.iter().map(|s| s.bytes_up).sum();
    let frames: u64 = run.wire_stats.iter().map(|s| s.frames).sum();
    assert_eq!(telemetry.counter_value("fl.transport.bytes_down"), down);
    assert_eq!(telemetry.counter_value("fl.transport.bytes_up"), up);
    assert_eq!(telemetry.counter_value("fl.transport.frames"), frames);
}

//! Every dataset of the paper's Table 2 runs end-to-end through its
//! designated mini-profile model inside the FL engine.

use dinar_data::catalog::{self, CatalogEntry, Profile};
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_data::split::attack_split;
use dinar_fl::{FlConfig, FlSystem};
use dinar_nn::{models, optim::Sgd, Model};
use dinar_tensor::Rng;

fn model_for(entry: &CatalogEntry, rng: &mut Rng) -> dinar_nn::Result<Model> {
    let classes = entry.spec.num_classes;
    match entry.name() {
        "cifar10" | "cifar100" => models::resnet_mini(3, classes, rng),
        "gtsrb" => models::vgg11_mini(3, classes, rng),
        "celeba" => models::vgg11_mini(1, classes, rng),
        "speech_commands" => models::m18_mini(classes, rng),
        _ => models::fcnn6(entry.spec.modality.feature_len(), classes, 48, rng),
    }
}

fn one_round(entry: CatalogEntry) {
    let name = entry.name().to_string();
    let mut rng = Rng::seed_from(17);
    let dataset = entry.generate(&mut rng).expect("generation");
    let split = attack_split(&dataset, &mut rng).expect("split");
    // Keep the shards tiny so a debug-profile round stays fast.
    let small = split
        .train
        .subset(&(0..120.min(split.train.len())).collect::<Vec<_>>())
        .expect("subset");
    let shards = partition_dataset(&small, 2, Distribution::Iid, &mut rng).expect("partition");
    let e2 = entry.clone();
    let mut system = FlSystem::builder(FlConfig {
        local_epochs: 1,
        batch_size: 32,
        seed: 1,
    })
    .clients_from_shards(shards, move |rng| model_for(&e2, rng), |_| {
        Box::new(Sgd::new(0.01))
    })
    .expect("build clients")
    .build()
    .expect("build system");
    let report = system.run_round().expect("round");
    assert!(
        report.mean_train_loss.is_finite() && report.mean_train_loss > 0.0,
        "{name}: bad loss {}",
        report.mean_train_loss
    );
    // The aggregated model evaluates without error.
    let test = split
        .test
        .subset(&(0..40.min(split.test.len())).collect::<Vec<_>>())
        .expect("test subset");
    let acc = system.mean_client_accuracy(&test).expect("accuracy");
    assert!((0.0..=1.0).contains(&acc), "{name}: accuracy {acc}");
}

#[test]
fn purchase100_runs() {
    one_round(catalog::purchase100(Profile::Mini));
}

#[test]
fn texas100_runs() {
    one_round(catalog::texas100(Profile::Mini));
}

#[test]
fn cifar10_runs() {
    one_round(catalog::cifar10(Profile::Mini));
}

#[test]
fn cifar100_runs() {
    one_round(catalog::cifar100(Profile::Mini));
}

#[test]
fn gtsrb_runs() {
    one_round(catalog::gtsrb(Profile::Mini));
}

#[test]
fn celeba_runs() {
    one_round(catalog::celeba(Profile::Mini));
}

#[test]
fn speech_commands_runs() {
    one_round(catalog::speech_commands(Profile::Mini));
}

//! Fault tolerance of the threaded FL transport, end to end.
//!
//! The seed repo's threaded transport collected each round with a bare
//! blocking `recv()`: one dead client thread hung the server forever. These
//! tests pin the replacement behaviour — deadline-driven collection, quorum
//! aggregation, deterministic fault injection, bounded retry — and its
//! determinism contract: the same seed and the same [`FaultPlan`] must
//! produce a bit-identical global model for any worker-pool width.

use dinar_fl::clock::{ManualClock, WallClock};
use dinar_fl::{
    run_threaded_resilient, FaultPlan, FlConfig, FlError, FlSystem, Quorum, ResilientRun,
    RetryPolicy, RoundPolicy,
};
use dinar_nn::models::{self, Activation};
use dinar_nn::optim::Sgd;
use dinar_tensor::{par, Rng, Tensor};
use dinar_telemetry::Telemetry;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Serializes mutations of the process-global pool width across tests.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 3] = [1, 2, 4];

/// Runs `f` once per width in [`WIDTHS`] and returns the results in order,
/// restoring the default width afterwards.
fn per_width<T>(f: impl Fn() -> T) -> Vec<T> {
    let _guard = WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let results = WIDTHS
        .iter()
        .map(|&w| {
            par::set_threads(w);
            f()
        })
        .collect();
    par::reset_threads();
    results
}

fn blob_dataset(n: usize, seed: u64) -> dinar_data::Dataset {
    let mut rng = Rng::seed_from(seed);
    let mut features = Tensor::zeros(&[n, 2]);
    let mut labels = Vec::new();
    for i in 0..n {
        let class = i % 2;
        let c = if class == 0 { -2.0 } else { 2.0 };
        features.set(&[i, 0], rng.normal_with(c, 0.6)).expect("set");
        features.set(&[i, 1], rng.normal_with(c, 0.6)).expect("set");
        labels.push(class);
    }
    dinar_data::Dataset::new(features, labels, &[2], 2).expect("dataset")
}

fn build_system() -> FlSystem {
    let data = blob_dataset(90, 5);
    let mut rng = Rng::seed_from(9);
    let shards = dinar_data::partition::partition_dataset(
        &data,
        3,
        dinar_data::partition::Distribution::Iid,
        &mut rng,
    )
    .expect("partition");
    FlSystem::builder(FlConfig {
        local_epochs: 2,
        batch_size: 16,
        seed: 3,
    })
    .clients_from_shards(
        shards,
        |rng| models::mlp(&[2, 8, 2], Activation::ReLU, rng),
        |_| Box::new(Sgd::new(0.1)),
    )
    .expect("clients")
    .build()
    .expect("system")
}

fn global_bits(run: &ResilientRun) -> Vec<u32> {
    run.system
        .global_params()
        .to_flat()
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

fn resilient(policy: RoundPolicy, rounds: usize) -> ResilientRun {
    run_threaded_resilient(build_system(), rounds, Arc::new(ManualClock::new()), policy)
        .expect("resilient run")
}

/// The original bug, as a regression test: under the strict (default)
/// policy a client that dies mid-run must surface as
/// [`FlError::ClientFailure`] — the seed transport blocked forever on its
/// bare `recv()` here. The run executes on a worker thread with a watchdog
/// timeout so a reintroduced hang fails the test instead of wedging CI.
#[test]
fn dead_client_surfaces_error_instead_of_hanging() {
    let (tx, rx) = channel();
    thread::spawn(move || {
        let policy = RoundPolicy::strict().with_faults(FaultPlan::new().crash(1, 2));
        let result =
            run_threaded_resilient(build_system(), 4, Arc::new(WallClock::new()), policy);
        let _ = tx.send(result);
    });
    let result = rx
        .recv_timeout(Duration::from_secs(120))
        .expect("transport hung on a dead client — the recv() bug is back");
    match result {
        Err(FlError::ClientFailure { client, round, .. }) => {
            assert_eq!(client, 1);
            assert_eq!(round, 2);
        }
        other => panic!("expected ClientFailure, got {other:?}"),
    }
}

/// A crash tolerated by a quorum policy terminates, meets quorum, and
/// yields a bit-identical global model for every worker-pool width.
#[test]
fn crash_with_quorum_is_bit_identical_across_widths() {
    let results = per_width(|| {
        let policy = RoundPolicy::with_quorum(Quorum::AtLeast(2), None)
            .with_faults(FaultPlan::new().crash(1, 2));
        let run = resilient(policy, 4);
        assert_eq!(run.reports.len(), 4, "run did not complete all rounds");
        // Round 1 is healthy; the crash costs one participant thereafter.
        assert_eq!(run.fault_stats[0].participants, 3);
        assert_eq!(run.fault_stats[0].clients_dropped, 0);
        for s in &run.fault_stats[1..] {
            assert_eq!(s.participants, 2, "round {}", s.round);
            assert_eq!(s.clients_dropped, 1, "round {}", s.round);
        }
        // Even the crashed client's state is recovered at join time for
        // post-mortem reassembly (its model is stale at the crash round).
        let ids: Vec<usize> = run.system.clients().iter().map(|c| c.id()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        global_bits(&run)
    });
    for (w, r) in WIDTHS.iter().zip(&results).skip(1) {
        assert_eq!(r, &results[0], "crash run diverged at {w} threads");
    }
}

/// `DropUpdate` (upload lost) and `Delay` (upload late) both exclude the
/// client from that round's aggregate while the client still trains, so the
/// two runs must end bit-identical — and the delayed upload must arrive
/// during the next round and be discarded by the stale tag check.
#[test]
fn delayed_and_dropped_updates_aggregate_identically() {
    let quorum = || RoundPolicy::with_quorum(Quorum::AtLeast(2), None);
    let dropped = resilient(quorum().with_faults(FaultPlan::new().drop_update(1, 2)), 4);
    let delayed = resilient(quorum().with_faults(FaultPlan::new().delay(1, 2)), 4);
    assert_eq!(
        global_bits(&dropped),
        global_bits(&delayed),
        "a lost upload and a late upload produced different global models"
    );
    assert_eq!(dropped.fault_stats[1].clients_dropped, 1);
    assert_eq!(dropped.fault_stats[1].participants, 2);
    // The held round-2 update flushes when round 3 starts; the server must
    // tag-check and discard it (the seed server aggregated any ClientMsg
    // without checking msg.round).
    assert_eq!(delayed.fault_stats[2].stale_discarded, 1);
    assert_eq!(
        dropped.fault_stats.iter().map(|s| s.stale_discarded).sum::<usize>(),
        0
    );
    // Every round still aggregated: stale updates never count as fresh.
    for s in &delayed.fault_stats {
        assert!(s.participants >= 2, "round {}", s.round);
    }
}

/// A transient failure retried to recovery consumes no client RNG (the
/// fault intercepts before training), so the run ends bit-identical to a
/// fault-free run.
#[test]
fn transient_retry_recovers_bit_identical_to_fault_free() {
    let healthy = resilient(RoundPolicy::strict(), 4);
    let policy = RoundPolicy::strict()
        .with_retry(RetryPolicy::retries(2))
        .with_faults(FaultPlan::new().transient(1, 2, 2));
    let recovered = resilient(policy, 4);
    assert_eq!(
        global_bits(&healthy),
        global_bits(&recovered),
        "retried run diverged from the fault-free run"
    );
    assert_eq!(recovered.fault_stats[1].clients_retried, 2);
    assert_eq!(recovered.fault_stats[1].participants, 3);
    assert_eq!(healthy.fault_stats[1].clients_retried, 0);
}

/// When the retry budget is smaller than the failure count, the client is
/// dropped for the round; with a quorum the round still aggregates, and
/// under full participation the run fails.
#[test]
fn exhausted_retries_drop_the_client() {
    let faults = || FaultPlan::new().transient(1, 2, 5);
    let lenient = RoundPolicy::with_quorum(Quorum::AtLeast(2), None)
        .with_retry(RetryPolicy::retries(1))
        .with_faults(faults());
    let run = resilient(lenient, 3);
    assert_eq!(run.fault_stats[1].clients_retried, 1);
    assert_eq!(run.fault_stats[1].clients_dropped, 1);
    assert_eq!(run.fault_stats[1].participants, 2);
    // The client recovers next round: the failure counter is per-round.
    assert_eq!(run.fault_stats[2].participants, 3);

    let strict = RoundPolicy::strict()
        .with_retry(RetryPolicy::retries(1))
        .with_faults(faults());
    let err = run_threaded_resilient(
        build_system(),
        3,
        Arc::new(ManualClock::new()),
        strict,
    )
    .expect_err("full participation cannot survive exhausted retries");
    assert!(
        matches!(err, FlError::ClientFailure { client: 1, round: 2, .. }),
        "{err}"
    );
}

/// A silently stalling client (alive but never replying) is resolved by the
/// wall-clock round deadline: the round proceeds on quorum and flags the
/// expiry.
#[test]
fn stalled_client_is_cut_off_by_the_deadline() {
    let policy = RoundPolicy::with_quorum(Quorum::AtLeast(2), Some(Duration::from_millis(250)))
        .with_faults(FaultPlan::new().stall(1, 2));
    let run = run_threaded_resilient(build_system(), 3, Arc::new(WallClock::new()), policy)
        .expect("quorum run survives a stall");
    assert_eq!(run.reports.len(), 3);
    let s = &run.fault_stats[1];
    assert!(s.deadline_expired, "deadline should have expired in round 2");
    assert_eq!(s.participants, 2);
    assert_eq!(s.clients_dropped, 1);
    // The stalled client is still alive and serves later rounds.
    assert_eq!(run.fault_stats[2].participants, 3);
    assert_eq!(run.system.clients().len(), 3);
}

/// Losing too many clients at once fails the round with a `ClientFailure`
/// that names the shortfall.
#[test]
fn below_quorum_round_fails_with_client_failure() {
    let policy = RoundPolicy::with_quorum(Quorum::AtLeast(2), None)
        .with_faults(FaultPlan::new().crash(0, 1).crash(2, 1));
    let err = run_threaded_resilient(
        build_system(),
        2,
        Arc::new(ManualClock::new()),
        policy,
    )
    .expect_err("one survivor cannot meet a quorum of two");
    match err {
        FlError::ClientFailure { round, cause, .. } => {
            assert_eq!(round, 1);
            assert!(cause.contains("below quorum"), "{cause}");
        }
        other => panic!("expected ClientFailure, got {other:?}"),
    }
}

/// A lenient policy with an *empty* fault plan changes nothing: the run
/// matches the strict sequential engine bit for bit.
#[test]
fn lenient_policy_without_faults_matches_sequential() {
    let mut sequential = build_system();
    sequential.run(4).expect("sequential run");
    let policy = RoundPolicy::with_quorum(Quorum::Fraction(0.5), Some(Duration::from_secs(60)))
        .with_retry(RetryPolicy::retries(3));
    let run = run_threaded_resilient(build_system(), 4, Arc::new(WallClock::new()), policy)
        .expect("threaded run");
    let diff = sequential
        .global_params()
        .max_abs_diff(run.system.global_params())
        .expect("diff");
    assert!(diff < 1e-7, "lenient healthy run diverged by {diff}");
    for s in &run.fault_stats {
        assert_eq!((s.participants, s.clients_dropped), (3, 0), "round {}", s.round);
    }
}

/// The transport's fault counters are deterministic telemetry: they reflect
/// message accounting, not scheduling.
#[test]
fn telemetry_counts_faults_per_round() {
    let telemetry = Telemetry::new();
    let mut system = build_system();
    system.set_telemetry(telemetry.clone());
    let policy = RoundPolicy::with_quorum(Quorum::AtLeast(2), None)
        .with_retry(RetryPolicy::retries(1))
        .with_faults(FaultPlan::new().drop_update(1, 1).transient(2, 2, 1).delay(0, 2));
    let run = run_threaded_resilient(system, 3, Arc::new(ManualClock::new()), policy)
        .expect("faulty quorum run");
    assert_eq!(telemetry.counter_value("fl.transport.rounds"), 3);
    assert_eq!(telemetry.counter_value("fl.transport.clients_dropped"), 2);
    assert_eq!(telemetry.counter_value("fl.transport.clients_retried"), 1);
    assert_eq!(telemetry.counter_value("fl.transport.stale_updates"), 1);
    assert_eq!(
        telemetry.counter_value("fl.transport.updates"),
        run.fault_stats.iter().map(|s| s.participants as u64).sum::<u64>()
    );
    // The run's telemetry handle survives the thread round trip.
    assert!(run.system.telemetry().is_enabled());
}

/// Seeded dropout schedules are reproducible and respect their bounds.
#[test]
fn seeded_dropout_plans_are_reproducible() {
    let a = FaultPlan::seeded_dropout(7, 10, 20, 0.3);
    let b = FaultPlan::seeded_dropout(7, 10, 20, 0.3);
    assert_eq!(a, b, "same seed must give the same schedule");
    let c = FaultPlan::seeded_dropout(8, 10, 20, 0.3);
    assert_ne!(a, c, "different seeds should differ");
    assert!(FaultPlan::seeded_dropout(7, 10, 20, 0.0).is_empty());
    assert_eq!(FaultPlan::seeded_dropout(7, 10, 20, 1.0).len(), 200);
}

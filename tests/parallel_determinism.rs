//! Determinism under parallelism: the repo's bit-exactness contract must
//! hold for any worker-pool width.
//!
//! The parallel layer (`dinar_tensor::par`) partitions work over output
//! ranges so each element is computed by exactly one thread in the same FP
//! order regardless of width; reductions fold fixed-size chunks in a fixed
//! order. These tests pin that contract end to end: matmul-family kernels,
//! conv forward/backward, and a full FL round must produce bit-identical
//! results for threads ∈ {1, 2, 4}.
//!
//! The pool width is process-global, so the tests serialize their width
//! changes through one mutex and restore the default afterwards.

use dinar_data::catalog::{self, Profile};
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_fl::{FlConfig, FlSystem};
use dinar_nn::models::{self, Activation};
use dinar_nn::{Layer, Model};
use dinar_tensor::conv::{im2col2d, Conv2dGeom};
use dinar_tensor::{par, Rng, Tensor};
use std::sync::Mutex;

/// Serializes mutations of the process-global pool width across tests.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 3] = [1, 2, 4];

/// Runs `f` once per width in [`WIDTHS`] and returns the results in order,
/// restoring the default width afterwards even on panic within the lock.
fn per_width<T>(f: impl Fn() -> T) -> Vec<T> {
    let _guard = WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let results = WIDTHS
        .iter()
        .map(|&w| {
            par::set_threads(w);
            f()
        })
        .collect();
    par::reset_threads();
    results
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn matmul_family_is_bit_identical_across_widths() {
    // Odd, non-multiple-of-block sizes exercise partition remainders and the
    // 4-row/4-column kernel tails.
    let mut rng = Rng::seed_from(7);
    let a = rng.randn(&[97, 61]);
    let b = rng.randn(&[61, 33]);
    let bt = rng.randn(&[33, 61]); // for matmul_t: [m,k]·[n,k]ᵀ
    let at = rng.randn(&[61, 97]); // for t_matmul: [k,m]ᵀ·[k,n]

    let results = per_width(|| {
        let mm = a.matmul(&b).expect("matmul");
        let mmt = a.matmul_t(&bt).expect("matmul_t");
        let tmm = at.t_matmul(&b).expect("t_matmul");
        (bits(&mm), bits(&mmt), bits(&tmm))
    });
    for (w, r) in WIDTHS.iter().zip(&results).skip(1) {
        assert_eq!(r, &results[0], "matmul family diverged at {w} threads");
    }
}

#[test]
fn im2col_and_reductions_are_bit_identical_across_widths() {
    let mut rng = Rng::seed_from(8);
    let x = rng.randn(&[3, 5, 13, 11]);
    let geom = Conv2dGeom {
        channels: 5,
        height: 13,
        width: 11,
        kernel_h: 3,
        kernel_w: 3,
        stride: 2,
        padding: 1,
    };
    let v = rng.randn(&[100_001]); // odd length: partial trailing chunk
    let u = rng.randn(&[100_001]);

    let results = per_width(|| {
        let cols = im2col2d(&x, &geom).expect("im2col2d");
        let sum = v.sum();
        let dot = v.dot(&u).expect("dot");
        let norm = v.norm_l2();
        (bits(&cols), sum.to_bits(), dot.to_bits(), norm.to_bits())
    });
    for (w, r) in WIDTHS.iter().zip(&results).skip(1) {
        assert_eq!(r, &results[0], "im2col/reductions diverged at {w} threads");
    }
}

#[test]
fn conv2d_forward_backward_is_bit_identical_across_widths() {
    let results = per_width(|| {
        // Fresh layer per width from the same seed: identical weights, so
        // any divergence comes from the kernels, not the setup.
        let mut rng = Rng::seed_from(9);
        let mut conv = dinar_nn::conv::Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = rng.randn(&[2, 3, 9, 9]);
        let y = conv.forward(&x, true).expect("forward");
        let g = rng.randn(&[2, 8, 9, 9]);
        let gx = conv.backward(&g).expect("backward");
        let grads = conv.grads();
        (
            bits(&y),
            bits(&gx),
            grads.iter().flat_map(|t| bits(t)).collect::<Vec<u32>>(),
        )
    });
    for (w, r) in WIDTHS.iter().zip(&results).skip(1) {
        assert_eq!(r, &results[0], "conv2d diverged at {w} threads");
    }
}

#[test]
fn model_forward_backward_is_bit_identical_across_widths() {
    let results = per_width(|| {
        let mut rng = Rng::seed_from(10);
        let mut model = models::mlp(&[37, 29, 11], Activation::ReLU, &mut rng).expect("mlp");
        let x = rng.randn(&[5, 37]);
        let y = model.forward(&x, true).expect("forward");
        let g = rng.randn(&[5, 11]);
        let gx = model.backward(&g).expect("backward");
        (bits(&y), bits(&gx), model.params().to_flat())
    });
    for (w, r) in WIDTHS.iter().zip(&results).skip(1) {
        assert_eq!(
            (&r.0, &r.1),
            (&results[0].0, &results[0].1),
            "model fwd/bwd diverged at {w} threads"
        );
        assert_eq!(
            r.2.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
            results[0].2.iter().map(|x| x.to_bits()).collect::<Vec<u32>>(),
            "model params diverged at {w} threads"
        );
    }
}

#[test]
fn fl_round_is_bit_identical_across_widths() {
    let results = per_width(|| {
        // A fresh system per width from the same seeds; the concurrent
        // client fan-out must not change the aggregated round result.
        let mut rng = Rng::seed_from(42);
        let dataset = catalog::purchase100(Profile::Mini)
            .generate(&mut rng)
            .expect("dataset");
        let shards =
            partition_dataset(&dataset, 3, Distribution::Iid, &mut rng).expect("partition");
        let arch = |rng: &mut Rng| -> dinar_nn::Result<Model> {
            models::mlp(&[600, 32, 100], Activation::ReLU, rng)
        };
        let mut system = FlSystem::builder(FlConfig {
            local_epochs: 1,
            batch_size: 64,
            seed: 5,
        })
        .clients_from_shards(shards, arch, |_| {
            Box::new(dinar_nn::optim::Adagrad::new(0.05))
        })
        .expect("clients built")
        .build()
        .expect("system built");

        let report = system.run_round().expect("round");
        (
            system
                .global_params()
                .to_flat()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<u32>>(),
            report.mean_train_loss.to_bits(),
        )
    });
    for (w, r) in WIDTHS.iter().zip(&results).skip(1) {
        assert_eq!(
            r.1, results[0].1,
            "FL round mean loss diverged at {w} threads"
        );
        assert_eq!(
            r.0, results[0].0,
            "FL round global params diverged at {w} threads"
        );
    }
}

//! The checkpoint plane, end to end: `DNCK` model/resume round-trips
//! through real files, corrupted images, and seeded bit-flip fuzz —
//! mirroring `tests/wire_plane.rs` for the at-rest format.
//!
//! These tests also run under `--features sanitize`: the checkpoint codec
//! moves raw bit patterns without arithmetic, so even non-finite payloads
//! round-trip without tripping the kernel sanitizers.

use dinar_fl::ckpt::{decode_resume, encode_resume, load_resume, save_resume};
use dinar_fl::{FlConfig, FlSystem};
use dinar_nn::ckpt::{self, CkptKind, FORMAT_VERSION, HEADER_LEN, MAGIC};
use dinar_nn::models::{self, Activation};
use dinar_nn::optim::Adam;
use dinar_nn::serve::ServingModel;
use dinar_nn::{io, NnError};
use dinar_tensor::{Dtype, Rng, Tensor};
use std::path::PathBuf;

const ALL_DTYPES: [Dtype; 3] = [Dtype::F32, Dtype::F16, Dtype::I8];

fn test_params() -> dinar_nn::ModelParams {
    let mut rng = Rng::seed_from(31);
    models::mlp(&[6, 5, 4], Activation::ReLU, &mut rng)
        .expect("model")
        .params()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dinar-ckpt-plane-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn small_system(seed: u64) -> FlSystem {
    let data = {
        let mut rng = Rng::seed_from(seed);
        let mut features = Tensor::zeros(&[60, 2]);
        let mut labels = Vec::new();
        for i in 0..60 {
            let class = i % 2;
            let c = if class == 0 { -2.0 } else { 2.0 };
            features.set(&[i, 0], rng.normal_with(c, 0.6)).expect("set");
            features.set(&[i, 1], rng.normal_with(c, 0.6)).expect("set");
            labels.push(class);
        }
        dinar_data::Dataset::new(features, labels, &[2], 2).expect("dataset")
    };
    let mut rng = Rng::seed_from(seed + 1);
    let shards = dinar_data::partition::partition_dataset(
        &data,
        3,
        dinar_data::partition::Distribution::Iid,
        &mut rng,
    )
    .expect("partition");
    FlSystem::builder(FlConfig {
        local_epochs: 1,
        batch_size: 16,
        seed: seed + 2,
    })
    .clients_from_shards(
        shards,
        |rng| models::mlp(&[2, 8, 2], Activation::ReLU, rng),
        |_| Box::new(Adam::new(0.05)),
    )
    .expect("clients")
    .build()
    .expect("system")
}

/// The file path round-trips at every storage width: f32 bit-identically,
/// f16/i8 shape-identically (they are lossy by design).
#[test]
fn model_checkpoint_files_roundtrip_at_every_dtype() {
    let params = test_params();
    for dtype in ALL_DTYPES {
        let path = temp_path(&format!("model-{dtype:?}.dnck"));
        ckpt::save(&params, dtype, &path).expect("save");
        let back = ckpt::load(&path).expect("load");
        assert_eq!(back.layers.len(), params.layers.len(), "{dtype:?}");
        for (a, b) in params.layers.iter().zip(&back.layers) {
            for (x, y) in a.tensors.iter().zip(&b.tensors) {
                assert_eq!(x.shape(), y.shape(), "{dtype:?}");
                if dtype == Dtype::F32 {
                    let xb: Vec<u32> = x.as_slice().iter().map(|v| v.to_bits()).collect();
                    let yb: Vec<u32> = y.as_slice().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(xb, yb);
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

/// `io::save`/`io::load` are the same plane: bytes on disk start with the
/// `DNCK` magic and decode with `ckpt::load`.
#[test]
fn io_facade_writes_dnck_files() {
    let params = test_params();
    let path = temp_path("io-facade.dnck");
    io::save(&params, &path).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    assert_eq!(&bytes[..4], &MAGIC);
    let back = ckpt::load(&path).expect("load via ckpt");
    assert_eq!(back.layers.len(), params.layers.len());
    std::fs::remove_file(&path).ok();
}

/// Every strict prefix of a model checkpoint errors: no partial decode
/// passes for a truncated file.
#[test]
fn truncated_model_checkpoints_error_at_every_cut() {
    let params = test_params();
    for dtype in ALL_DTYPES {
        let bytes = ckpt::encode_checkpoint(&params, dtype).expect("encode");
        for cut in 0..bytes.len() {
            assert!(
                ckpt::decode_checkpoint(&bytes[..cut]).is_err(),
                "{dtype:?}: prefix of {cut} bytes decoded"
            );
        }
    }
}

/// Header corruption surfaces as typed errors: wrong magic, unsupported
/// version, wrong image kind, unknown dtype tag.
#[test]
fn header_corruption_is_typed() {
    let params = test_params();
    let bytes = ckpt::encode_checkpoint(&params, Dtype::F32).expect("encode");

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(ckpt::decode_checkpoint(&bad_magic).is_err(), "bad magic");

    let mut bad_version = bytes.clone();
    bad_version[4] = (FORMAT_VERSION + 1) as u8;
    assert!(ckpt::decode_checkpoint(&bad_version).is_err(), "bad version");

    let mut bad_kind = bytes.clone();
    bad_kind[6] = CkptKind::FlResume.tag();
    assert!(
        ckpt::decode_checkpoint(&bad_kind).is_err(),
        "a resume-tagged image must not load as a model"
    );

    let mut bad_dtype = bytes.clone();
    bad_dtype[HEADER_LEN + 8] = 0x7F; // first tensor's dtype tag
    assert!(ckpt::decode_checkpoint(&bad_dtype).is_err(), "bad dtype tag");

    let mut trailing = bytes;
    trailing.push(0);
    assert!(ckpt::decode_checkpoint(&trailing).is_err(), "trailing byte");
}

/// Seeded fuzz over corrupted model images at every dtype: random bit
/// flips must return a typed error or decode garbage — never panic,
/// allocate absurdly, or loop.
#[test]
fn corrupted_model_checkpoints_never_panic() {
    let params = test_params();
    let mut rng = Rng::seed_from(99);
    for dtype in ALL_DTYPES {
        let bytes = ckpt::encode_checkpoint(&params, dtype).expect("encode");
        for trial in 0..200u64 {
            let mut corrupt = bytes.clone();
            let flips = 1 + (trial % 4) as usize;
            for f in 0..flips {
                let r = rng.next_u64()
                    ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(f as u64);
                let idx = (r as usize) % corrupt.len();
                corrupt[idx] ^= 1u8 << (r >> 32 & 7);
            }
            let _ = ckpt::decode_checkpoint(&corrupt); // Ok(garbage) or Err
        }
    }
}

/// The FL resume image survives the same treatment: file round-trip,
/// every-prefix truncation, and seeded bit-flip fuzz.
#[test]
fn resume_images_roundtrip_and_survive_corruption() {
    let mut system = small_system(7);
    system.run(1).expect("round");
    system.begin_round_partial(2).expect("partial");
    let image = system.checkpoint();
    let bytes = encode_resume(&image).expect("encode");

    let back = decode_resume(&bytes).expect("decode");
    assert_eq!(back.rounds_run, image.rounds_run);
    assert_eq!(back.clients.len(), image.clients.len());
    assert!(back.pending.is_some());

    let path = temp_path("resume.dnck");
    save_resume(&image, &path).expect("save");
    let from_file = load_resume(&path).expect("load");
    assert_eq!(from_file.rounds_run, image.rounds_run);
    std::fs::remove_file(&path).ok();

    for cut in 0..bytes.len() {
        assert!(
            decode_resume(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes decoded"
        );
    }
    let mut rng = Rng::seed_from(131);
    for trial in 0..300u64 {
        let mut corrupt = bytes.clone();
        let flips = 1 + (trial % 4) as usize;
        for f in 0..flips {
            let r = rng.next_u64() ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(f as u64);
            let idx = (r as usize) % corrupt.len();
            corrupt[idx] ^= 1u8 << (r >> 32 & 7);
        }
        let _ = decode_resume(&corrupt); // Ok(garbage) or Err — never a panic
    }
}

/// A model image does not load as a resume image, and vice versa — the
/// kind byte keeps the two planes apart.
#[test]
fn image_kinds_do_not_cross_load() {
    let params = test_params();
    let model_bytes = ckpt::encode_checkpoint(&params, Dtype::F32).expect("encode");
    assert!(decode_resume(&model_bytes).is_err());

    let mut system = small_system(17);
    system.run(1).expect("round");
    let resume_bytes = encode_resume(&system.checkpoint()).expect("encode");
    assert!(ckpt::decode_checkpoint(&resume_bytes).is_err());
}

/// The serving loader rejects corrupt files with typed errors, and a
/// missing file is an error, not a panic.
#[test]
fn serving_loader_rejects_corrupt_files() {
    let params = test_params();
    let path = temp_path("serve-corrupt.dnck");
    let bytes = ckpt::encode_checkpoint(&params, Dtype::I8).expect("encode");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("write truncated");
    assert!(matches!(
        ServingModel::load(&path),
        Err(NnError::Wire(_) | NnError::InvalidConfig { .. })
    ));
    std::fs::remove_file(&path).ok();
    assert!(ServingModel::load(temp_path("does-not-exist.dnck")).is_err());
}

//! Telemetry determinism contract: a fully instrumented FL round must
//! produce the same *observations* and the same *observed system* at every
//! worker-pool width.
//!
//! Three properties are pinned, for threads ∈ {1, 2, 4}:
//!
//! 1. the sorted span list (paths, manual-clock timestamps) is identical;
//! 2. the non-volatile metrics (kernel counters, FL counters, gradient-norm
//!    gauges) are identical — volatile metrics (pool fan-out, alloc
//!    high-water marks) legitimately vary and are excluded by the
//!    deterministic export;
//! 3. the trained global model is bit-identical to an *uninstrumented* run —
//!    observation must not perturb the computation.
//!
//! The suite's `sanitize` feature must not change any of this, so CI runs
//! this file in both configurations.

use dinar_data::catalog::{self, Profile};
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_fl::{FlConfig, FlSystem};
use dinar_nn::models::{self, Activation};
use dinar_nn::Model;
use dinar_telemetry::{export, ManualClock, Telemetry};
use dinar_tensor::{par, Rng};
use std::sync::{Arc, Mutex};

/// Serializes mutations of the process-global pool width across tests.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 3] = [1, 2, 4];

/// Runs `f` once per width in [`WIDTHS`] and returns the results in order,
/// restoring the default width afterwards.
fn per_width<T>(f: impl Fn() -> T) -> Vec<T> {
    let _guard = WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let results = WIDTHS
        .iter()
        .map(|&w| {
            par::set_threads(w);
            f()
        })
        .collect();
    par::reset_threads();
    results
}

/// A small 3-client FL system over Purchase100-mini shards, built fresh
/// from fixed seeds so every call starts bit-identical.
fn build_system() -> FlSystem {
    let mut rng = Rng::seed_from(42);
    let dataset = catalog::purchase100(Profile::Mini)
        .generate(&mut rng)
        .expect("dataset");
    let shards = partition_dataset(&dataset, 3, Distribution::Iid, &mut rng).expect("partition");
    let arch = |rng: &mut Rng| -> dinar_nn::Result<Model> {
        models::mlp(&[600, 32, 100], Activation::ReLU, rng)
    };
    FlSystem::builder(FlConfig {
        local_epochs: 1,
        batch_size: 64,
        seed: 5,
    })
    .clients_from_shards(shards, arch, |_| {
        Box::new(dinar_nn::optim::Adagrad::new(0.05))
    })
    .expect("clients built")
    .build()
    .expect("system built")
}

fn global_bits(system: &FlSystem) -> Vec<u32> {
    system
        .global_params()
        .to_flat()
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

#[test]
fn instrumented_fl_round_is_deterministic_across_widths() {
    let results = per_width(|| {
        let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
        let mut system = build_system();
        system.set_telemetry(tel.clone());
        system.run_round().expect("round");
        (
            export::export_jsonl(&tel, false),
            global_bits(&system),
        )
    });

    // The instrumented run must also match a run with no telemetry at all.
    let baseline = {
        let _guard = WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut system = build_system();
        system.run_round().expect("round");
        global_bits(&system)
    };

    for (w, (jsonl, bits)) in WIDTHS.iter().zip(&results) {
        assert_eq!(
            jsonl, &results[0].0,
            "deterministic telemetry export diverged at {w} threads"
        );
        assert_eq!(
            bits, &results[0].1,
            "global params diverged at {w} threads"
        );
    }
    assert_eq!(
        results[0].1, baseline,
        "telemetry instrumentation perturbed the trained model"
    );

    // Sanity on the observation content itself: per-client, per-phase and
    // per-layer spans all present, and the kernel counters nonzero.
    let jsonl = &results[0].0;
    for needle in [
        "round[1]/client[0]/train",
        "round[1]/client[2]/upload",
        "round[1]/aggregate",
        "fwd[0:dense]",
        "bwd[2:dense]",
        "tensor.matmul.flops",
        "fl.rounds",
    ] {
        assert!(jsonl.contains(needle), "missing `{needle}` in:\n{jsonl}");
    }
    assert!(
        !jsonl.contains("tensor.pool."),
        "volatile pool metrics leaked into the deterministic export"
    );
}

#[test]
fn sorted_spans_and_metrics_are_stable_over_two_rounds() {
    let results = per_width(|| {
        let tel = Telemetry::with_clock(Arc::new(ManualClock::new()));
        let mut system = build_system();
        system.set_telemetry(tel.clone());
        system.run(2).expect("two rounds");
        let spans: Vec<String> = export::sorted_spans(&tel)
            .into_iter()
            .map(|s| format!("{} {} {}", s.path, s.start_us, s.dur_us))
            .collect();
        let metrics: Vec<String> = tel
            .metrics()
            .into_iter()
            .filter(|m| !m.volatile)
            .map(|m| format!("{} {:?}", m.name, m.data))
            .collect();
        (spans, metrics)
    });
    for (w, r) in WIDTHS.iter().zip(&results).skip(1) {
        assert_eq!(r.0, results[0].0, "sorted spans diverged at {w} threads");
        assert_eq!(r.1, results[0].1, "metrics diverged at {w} threads");
    }
    // Both rounds present in the span paths.
    assert!(results[0].0.iter().any(|s| s.starts_with("round[1]/")));
    assert!(results[0].0.iter().any(|s| s.starts_with("round[2]/")));
}

//! Property tests over the core data structures and invariants of the
//! reproduction, driven by the workspace's own seeded RNG instead of
//! `proptest` so the whole suite is deterministic and dependency-free:
//! every case is a pure function of the loop index.

use dinar_consensus::vote;
use dinar_data::partition::{partition_indices, Distribution};
use dinar_metrics::histogram::{js_divergence, Histogram};
use dinar_metrics::roc::attack_auc;
use dinar_nn::{LayerParams, ModelParams};
use dinar_tensor::{Rng, Tensor};

const CASES: u64 = 64;

/// Per-case RNG: independent, reproducible stream per (property, case).
fn case_rng(property: u64, case: u64) -> Rng {
    Rng::seed_from(0xD1AA_4000 + property * 10_007 + case)
}

/// Random vector with `1..max_len` entries in `[-100, 100)`.
fn small_vec(rng: &mut Rng, max_len: usize) -> Vec<f32> {
    let len = 1 + rng.below(max_len - 1);
    (0..len).map(|_| rng.uniform_in(-100.0, 100.0)).collect()
}

// ----------------------------------------------------------------------
// Tensor algebra
// ----------------------------------------------------------------------

#[test]
fn tensor_add_commutes() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let a = small_vec(&mut rng, 64);
        let t1 = Tensor::from_slice(&a);
        let t2 = rng.randn(&[a.len()]);
        let s1 = t1.add(&t2).unwrap();
        let s2 = t2.add(&t1).unwrap();
        assert!(s1.approx_eq(&s2, 1e-6), "case {case}");
    }
}

#[test]
fn tensor_scale_distributes_over_add() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let a = small_vec(&mut rng, 32);
        let k = rng.uniform_in(-10.0, 10.0);
        let t1 = Tensor::from_slice(&a);
        let t2 = rng.rand_uniform(&[a.len()], -1.0, 1.0);
        let lhs = t1.add(&t2).unwrap().mul_scalar(k);
        let rhs = t1.mul_scalar(k).add(&t2.mul_scalar(k)).unwrap();
        assert!(lhs.approx_eq(&rhs, 1e-3), "case {case}");
    }
}

#[test]
fn matmul_is_associative() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let (m, k, n, p) = (
            1 + rng.below(4),
            1 + rng.below(4),
            1 + rng.below(4),
            1 + rng.below(4),
        );
        let a = rng.rand_uniform(&[m, k], -1.0, 1.0);
        let b = rng.rand_uniform(&[k, n], -1.0, 1.0);
        let c = rng.rand_uniform(&[n, p], -1.0, 1.0);
        let lhs = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!(lhs.approx_eq(&rhs, 1e-3), "case {case}");
    }
}

#[test]
fn transpose_preserves_matmul() {
    // (A·B)ᵀ = Bᵀ·Aᵀ
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let (m, k, n) = (1 + rng.below(5), 1 + rng.below(5), 1 + rng.below(5));
        let a = rng.randn(&[m, k]);
        let b = rng.randn(&[k, n]);
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        assert!(lhs.approx_eq(&rhs, 1e-3), "case {case}");
    }
}

// ----------------------------------------------------------------------
// Model parameter arithmetic (the FedAvg substrate)
// ----------------------------------------------------------------------

#[test]
fn fedavg_of_identical_params_is_identity() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let v = small_vec(&mut rng, 32);
        let copies = 2 + rng.below(4);
        let p = ModelParams::new(vec![LayerParams::new(vec![Tensor::from_slice(&v)])]);
        let mut acc = p.zeros_like();
        for _ in 0..copies {
            acc.scaled_add_assign(1.0 / copies as f32, &p).unwrap();
        }
        assert!(acc.max_abs_diff(&p).unwrap() < 1e-4, "case {case}");
    }
}

#[test]
fn fedavg_stays_within_convex_hull() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let a = small_vec(&mut rng, 16);
        let w = rng.uniform();
        let n = a.len();
        let pa = ModelParams::new(vec![LayerParams::new(vec![Tensor::from_slice(&a)])]);
        let pb = ModelParams::new(vec![LayerParams::new(vec![
            rng.rand_uniform(&[n], -50.0, 50.0),
        ])]);
        let mut avg = pa.zeros_like();
        avg.scaled_add_assign(w, &pa).unwrap();
        avg.scaled_add_assign(1.0 - w, &pb).unwrap();
        let fa = pa.to_flat();
        let fb = pb.to_flat();
        for (i, x) in avg.to_flat().iter().enumerate() {
            let lo = fa[i].min(fb[i]) - 1e-4;
            let hi = fa[i].max(fb[i]) + 1e-4;
            assert!(
                (lo..=hi).contains(x),
                "case {case}: component {i} escaped the hull"
            );
        }
    }
}

// ----------------------------------------------------------------------
// Attack AUC
// ----------------------------------------------------------------------

#[test]
fn auc_is_bounded_and_inversion_symmetric() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let members = small_vec(&mut rng, 40);
        let nonmembers = small_vec(&mut rng, 40);
        let auc = attack_auc(&members, &nonmembers);
        assert!((0.0..=1.0).contains(&auc), "case {case}");
        // Negating all scores inverts the ranking exactly.
        let neg_m: Vec<f32> = members.iter().map(|x| -x).collect();
        let neg_n: Vec<f32> = nonmembers.iter().map(|x| -x).collect();
        let inverted = attack_auc(&neg_m, &neg_n);
        assert!((auc + inverted - 1.0).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn auc_is_translation_invariant() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let members = small_vec(&mut rng, 30);
        let nonmembers = small_vec(&mut rng, 30);
        let shift = rng.uniform_in(-5.0, 5.0);
        let auc = attack_auc(&members, &nonmembers);
        let shifted_m: Vec<f32> = members.iter().map(|x| x + shift).collect();
        let shifted_n: Vec<f32> = nonmembers.iter().map(|x| x + shift).collect();
        assert!(
            (auc - attack_auc(&shifted_m, &shifted_n)).abs() < 1e-9,
            "case {case}"
        );
    }
}

// ----------------------------------------------------------------------
// Histograms and JS divergence
// ----------------------------------------------------------------------

#[test]
fn js_divergence_is_symmetric_and_bounded() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let a = small_vec(&mut rng, 200);
        let b = small_vec(&mut rng, 200);
        let (ha, hb) = Histogram::joint_pair(&a, &b, 16);
        let p = ha.probabilities();
        let q = hb.probabilities();
        let d1 = js_divergence(&p, &q);
        let d2 = js_divergence(&q, &p);
        assert!((d1 - d2).abs() < 1e-12, "case {case}");
        assert!(
            (0.0..=std::f64::consts::LN_2 + 1e-12).contains(&d1),
            "case {case}"
        );
    }
}

#[test]
fn histogram_never_loses_finite_samples() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let a = small_vec(&mut rng, 100);
        let bins = 1 + rng.below(31);
        let mut h = Histogram::new(-10.0, 10.0, bins);
        h.extend(a.iter().copied());
        assert_eq!(h.total(), a.len() as u64, "case {case}"); // clamping, not dropping
    }
}

// ----------------------------------------------------------------------
// Partitioning
// ----------------------------------------------------------------------

#[test]
fn partitions_are_exhaustive_and_disjoint() {
    for case in 0..CASES {
        let mut rng = case_rng(11, case);
        let n = 10 + rng.below(190);
        let classes = 1 + rng.below(9);
        let clients = 1 + rng.below(7.min(n));
        let dist = if rng.uniform() < 0.5 {
            Distribution::Dirichlet(0.1 + f64::from(rng.uniform()) * 9.9)
        } else {
            Distribution::Iid
        };
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let shards = partition_indices(&labels, classes, clients, dist, &mut rng).unwrap();
        assert_eq!(shards.len(), clients, "case {case}");
        assert!(shards.iter().all(|s| !s.is_empty()), "case {case}");
        let mut all: Vec<usize> = shards.concat();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "case {case}");
    }
}

// ----------------------------------------------------------------------
// Voting
// ----------------------------------------------------------------------

#[test]
fn majority_value_always_wins_the_vote() {
    for case in 0..CASES {
        let mut rng = case_rng(12, case);
        let majority_value = rng.below(8);
        let honest = 3 + rng.below(9);
        let byzantine = rng.below(3.min(honest));
        let byzantine_votes: Vec<usize> = (0..byzantine).map(|_| rng.below(8)).collect();
        let mut votes = vec![majority_value; honest];
        votes.extend(&byzantine_votes);
        let decided = vote::decide(&votes, 8).unwrap();
        assert_eq!(decided, majority_value, "case {case}");
    }
}

#[test]
fn decide_returns_a_valid_choice() {
    for case in 0..CASES {
        let mut rng = case_rng(13, case);
        let len = 1 + rng.below(19);
        let votes: Vec<usize> = (0..len).map(|_| rng.below(6)).collect();
        let decided = vote::decide(&votes, 6).unwrap();
        assert!(decided < 6, "case {case}");
        // The decided value must actually have been voted for.
        assert!(votes.contains(&decided), "case {case}");
    }
}

// ----------------------------------------------------------------------
// RNG determinism
// ----------------------------------------------------------------------

#[test]
fn rng_streams_are_reproducible() {
    for case in 0..CASES {
        let mut rng = case_rng(14, case);
        let seed = rng.next_u64() % 10_000;
        let stream = rng.next_u64() % 100;
        let root = Rng::seed_from(seed);
        let mut a = root.split(stream);
        let mut b = root.split(stream);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64(), "case {case}");
        }
    }
}

//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use dinar_consensus::vote;
use dinar_data::partition::{partition_indices, Distribution};
use dinar_metrics::histogram::{js_divergence, Histogram};
use dinar_metrics::roc::attack_auc;
use dinar_nn::{LayerParams, ModelParams};
use dinar_tensor::{Rng, Tensor};
use proptest::prelude::*;

fn small_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // Tensor algebra
    // ------------------------------------------------------------------

    #[test]
    fn tensor_add_commutes(a in small_vec(64), seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let t1 = Tensor::from_slice(&a);
        let t2 = rng.randn(&[a.len()]);
        let s1 = t1.add(&t2).unwrap();
        let s2 = t2.add(&t1).unwrap();
        prop_assert!(s1.approx_eq(&s2, 1e-6));
    }

    #[test]
    fn tensor_scale_distributes_over_add(a in small_vec(32), k in -10.0f32..10.0) {
        let mut rng = Rng::seed_from(7);
        let t1 = Tensor::from_slice(&a);
        let t2 = rng.rand_uniform(&[a.len()], -1.0, 1.0);
        let lhs = t1.add(&t2).unwrap().mul_scalar(k);
        let rhs = t1.mul_scalar(k).add(&t2.mul_scalar(k)).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matmul_is_associative(m in 1usize..5, k in 1usize..5, n in 1usize..5, p in 1usize..5, seed in 0u64..100) {
        let mut rng = Rng::seed_from(seed);
        let a = rng.rand_uniform(&[m, k], -1.0, 1.0);
        let b = rng.rand_uniform(&[k, n], -1.0, 1.0);
        let c = rng.rand_uniform(&[n, p], -1.0, 1.0);
        let lhs = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn transpose_preserves_matmul(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..100) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let mut rng = Rng::seed_from(seed);
        let a = rng.randn(&[m, k]);
        let b = rng.randn(&[k, n]);
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    // ------------------------------------------------------------------
    // Model parameter arithmetic (the FedAvg substrate)
    // ------------------------------------------------------------------

    #[test]
    fn fedavg_of_identical_params_is_identity(v in small_vec(32), copies in 2usize..6) {
        let p = ModelParams::new(vec![LayerParams::new(vec![Tensor::from_slice(&v)])]);
        let mut acc = p.zeros_like();
        for _ in 0..copies {
            acc.scaled_add_assign(1.0 / copies as f32, &p).unwrap();
        }
        prop_assert!(acc.max_abs_diff(&p).unwrap() < 1e-4);
    }

    #[test]
    fn fedavg_stays_within_convex_hull(a in small_vec(16), w in 0.0f32..1.0) {
        let n = a.len();
        let pa = ModelParams::new(vec![LayerParams::new(vec![Tensor::from_slice(&a)])]);
        let mut rng = Rng::seed_from(3);
        let pb = ModelParams::new(vec![LayerParams::new(vec![rng.rand_uniform(&[n], -50.0, 50.0)])]);
        let mut avg = pa.zeros_like();
        avg.scaled_add_assign(w, &pa).unwrap();
        avg.scaled_add_assign(1.0 - w, &pb).unwrap();
        let fa = pa.to_flat();
        let fb = pb.to_flat();
        for (i, x) in avg.to_flat().iter().enumerate() {
            let lo = fa[i].min(fb[i]) - 1e-4;
            let hi = fa[i].max(fb[i]) + 1e-4;
            prop_assert!((lo..=hi).contains(x), "component {i} escaped the hull");
        }
    }

    // ------------------------------------------------------------------
    // Attack AUC
    // ------------------------------------------------------------------

    #[test]
    fn auc_is_bounded_and_inversion_symmetric(
        members in small_vec(40),
        nonmembers in small_vec(40),
    ) {
        let auc = attack_auc(&members, &nonmembers);
        prop_assert!((0.0..=1.0).contains(&auc));
        // Negating all scores inverts the ranking exactly.
        let neg_m: Vec<f32> = members.iter().map(|x| -x).collect();
        let neg_n: Vec<f32> = nonmembers.iter().map(|x| -x).collect();
        let inverted = attack_auc(&neg_m, &neg_n);
        prop_assert!((auc + inverted - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_is_translation_invariant(members in small_vec(30), nonmembers in small_vec(30), shift in -5.0f32..5.0) {
        let auc = attack_auc(&members, &nonmembers);
        let shifted_m: Vec<f32> = members.iter().map(|x| x + shift).collect();
        let shifted_n: Vec<f32> = nonmembers.iter().map(|x| x + shift).collect();
        prop_assert!((auc - attack_auc(&shifted_m, &shifted_n)).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // Histograms and JS divergence
    // ------------------------------------------------------------------

    #[test]
    fn js_divergence_is_symmetric_and_bounded(a in small_vec(200), b in small_vec(200)) {
        let (ha, hb) = Histogram::joint_pair(&a, &b, 16);
        let p = ha.probabilities();
        let q = hb.probabilities();
        let d1 = js_divergence(&p, &q);
        let d2 = js_divergence(&q, &p);
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!((0.0..=std::f64::consts::LN_2 + 1e-12).contains(&d1));
    }

    #[test]
    fn histogram_never_loses_finite_samples(a in small_vec(100), bins in 1usize..32) {
        let mut h = Histogram::new(-10.0, 10.0, bins);
        h.extend(a.iter().copied());
        prop_assert_eq!(h.total(), a.len() as u64); // clamping, not dropping
    }

    // ------------------------------------------------------------------
    // Partitioning
    // ------------------------------------------------------------------

    #[test]
    fn partitions_are_exhaustive_and_disjoint(
        n in 10usize..200,
        classes in 1usize..10,
        clients in 1usize..8,
        alpha in prop::option::of(0.1f64..10.0),
        seed in 0u64..1000,
    ) {
        prop_assume!(n >= clients);
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let dist = match alpha {
            Some(a) => Distribution::Dirichlet(a),
            None => Distribution::Iid,
        };
        let mut rng = Rng::seed_from(seed);
        let shards = partition_indices(&labels, classes, clients, dist, &mut rng).unwrap();
        prop_assert_eq!(shards.len(), clients);
        prop_assert!(shards.iter().all(|s| !s.is_empty()));
        let mut all: Vec<usize> = shards.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    // ------------------------------------------------------------------
    // Voting
    // ------------------------------------------------------------------

    #[test]
    fn majority_value_always_wins_the_vote(
        majority_value in 0usize..8,
        honest in 3usize..12,
        byzantine_votes in prop::collection::vec(0usize..8, 0..3),
    ) {
        prop_assume!(byzantine_votes.len() < honest);
        let mut votes = vec![majority_value; honest];
        votes.extend(&byzantine_votes);
        let decided = vote::decide(&votes, 8).unwrap();
        prop_assert_eq!(decided, majority_value);
    }

    #[test]
    fn decide_returns_a_valid_choice(votes in prop::collection::vec(0usize..6, 1..20)) {
        let decided = vote::decide(&votes, 6).unwrap();
        prop_assert!(decided < 6);
        // The decided value must actually have been voted for.
        prop_assert!(votes.contains(&decided));
    }

    // ------------------------------------------------------------------
    // RNG determinism
    // ------------------------------------------------------------------

    #[test]
    fn rng_streams_are_reproducible(seed in 0u64..10_000, stream in 0u64..100) {
        let root = Rng::seed_from(seed);
        let mut a = root.split(stream);
        let mut b = root.split(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

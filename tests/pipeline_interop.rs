//! Cross-crate interop tests: threaded transport with defenses attached,
//! checkpoint/resume mid-training, and the CSV → FL pipeline.

use dinar::middleware::DinarMiddleware;
use dinar::DinarConfig;
use dinar_data::catalog::{self, Profile};
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_data::split::attack_split;
use dinar_data::{csv, Dataset};
use dinar_fl::transport::run_threaded;
use dinar_fl::{FlConfig, FlSystem};
use dinar_nn::{io, models, optim::Adagrad, Model};
use dinar_tensor::Rng;

fn arch(rng: &mut Rng) -> dinar_nn::Result<Model> {
    models::fcnn6(600, 100, 48, rng)
}

fn shards() -> (Vec<Dataset>, Dataset) {
    let mut rng = Rng::seed_from(11);
    let dataset = catalog::purchase100(Profile::Mini)
        .generate(&mut rng)
        .unwrap();
    let split = attack_split(&dataset, &mut rng).unwrap();
    let shards = partition_dataset(&split.train, 3, Distribution::Iid, &mut rng).unwrap();
    (shards, split.test)
}

fn build(with_dinar: bool) -> FlSystem {
    let (shards, _) = shards();
    let mut builder = FlSystem::builder(FlConfig {
        local_epochs: 2,
        batch_size: 64,
        seed: 6,
    })
    .clients_from_shards(shards, arch, |_| Box::new(Adagrad::new(0.05)))
    .unwrap();
    if with_dinar {
        let config = DinarConfig::default();
        builder = builder.with_client_middleware(move |id| {
            vec![Box::new(DinarMiddleware::new(4, config, id as u64))]
        });
    }
    builder.build().unwrap()
}

/// The threaded transport must agree with the sequential engine even with
/// stateful middleware (DINAR's private-layer store) in the loop.
#[test]
fn threaded_dinar_matches_sequential_dinar() {
    let mut sequential = build(true);
    sequential.run(3).unwrap();
    let (threaded, _) = run_threaded(build(true), 3).unwrap();
    let diff = sequential
        .global_params()
        .max_abs_diff(threaded.global_params())
        .unwrap();
    assert!(diff < 1e-6, "threaded DINAR diverged by {diff}");
}

/// Checkpointing the global model mid-run and resuming from it reproduces
/// the same final model as an uninterrupted run: the server state is fully
/// captured by its parameters.
#[test]
fn checkpoint_resume_is_equivalent_for_stateless_baseline() {
    // Uninterrupted reference: 4 rounds.
    let mut reference = build(false);
    reference.run(4).unwrap();

    // Interrupted run: 2 rounds, checkpoint, rebuild clients, restore, 2 more.
    let mut first = build(false);
    first.run(2).unwrap();
    let path = std::env::temp_dir().join("dinar-resume-test.ckpt.json");
    io::save(first.global_params(), &path).unwrap();

    // NOTE: client-side optimizer state (accumulated Adagrad G) is NOT part
    // of the global checkpoint, so resuming resets it — as it would when new
    // client processes join. We therefore compare against a reference with
    // the same reset, not bit-equality with `reference`.
    let restored = io::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let mut resumed = build(false);
    // Install the checkpoint as the server's model by aggregating it from a
    // synthetic single "update" carrying the restored parameters.
    resumed
        .server_mut()
        .aggregate(&[dinar_fl::ClientUpdate {
            client_id: 0,
            params: restored.clone(),
            num_samples: 1,
        }])
        .unwrap();
    assert!(resumed.global_params().max_abs_diff(&restored).unwrap() < 1e-9);
    resumed.run(2).unwrap();

    // The resumed run trains sensibly (loss finite, model changed).
    assert!(resumed.global_params().max_abs_diff(&restored).unwrap() > 1e-6);
}

/// CSV round-trip feeds the FL pipeline: export a synthetic dataset, load
/// it back, train on it.
#[test]
fn csv_export_import_then_train() {
    let mut rng = Rng::seed_from(13);
    let dataset = catalog::purchase100(Profile::Mini)
        .generate(&mut rng)
        .unwrap();
    let small = dataset.subset(&(0..120).collect::<Vec<_>>()).unwrap();
    let text = csv::to_csv(&small);
    let reloaded = csv::from_csv(&text).unwrap();
    assert_eq!(reloaded.len(), 120);

    let shards = partition_dataset(&reloaded, 2, Distribution::Iid, &mut rng).unwrap();
    let mut system = FlSystem::builder(FlConfig {
        local_epochs: 1,
        batch_size: 32,
        seed: 1,
    })
    .clients_from_shards(shards, arch, |_| Box::new(Adagrad::new(0.05)))
    .unwrap()
    .build()
    .unwrap();
    let report = system.run_round().unwrap();
    assert!(report.mean_train_loss.is_finite());
}

/// Per-class evaluation across a federated system: merged client confusion
/// matrices agree with the mean accuracy metric.
#[test]
fn merged_confusions_are_consistent_with_accuracy() {
    use dinar_fl::eval::confusion_of_params;
    use dinar_metrics::confusion::ConfusionMatrix;

    let (_, test) = shards();
    let mut system = build(false);
    system.run(2).unwrap();
    system.sync_clients().unwrap();

    let mut rng = Rng::seed_from(21);
    let mut template = arch(&mut rng).unwrap();
    let mut merged = ConfusionMatrix::new(test.num_classes());
    let mut acc_sum = 0.0f64;
    let n_clients = system.clients().len();
    for client in system.clients() {
        let params = client.model().params();
        let matrix = confusion_of_params(&params, &mut template, &test).unwrap();
        acc_sum += matrix.accuracy();
        merged.merge(&matrix);
    }
    assert_eq!(merged.total(), (test.len() * n_clients) as u64);
    // All clients hold the same global model after sync, so the merged
    // accuracy equals each client's accuracy.
    assert!((merged.accuracy() - acc_sum / n_clients as f64).abs() < 1e-9);
}

//! End-to-end integration: the full paper pipeline on one dataset.
//!
//! Data synthesis → attacker split → FL training → membership inference →
//! DINAR protection, asserting the paper's headline qualitative results:
//! the undefended system leaks (attack AUC well above 50%), DINAR pins the
//! attack near 50% on both the global model and client uploads, and keeps
//! the personalized accuracy close to the undefended baseline.

use dinar::middleware::DinarMiddleware;
use dinar::DinarConfig;
use dinar_attacks::evaluate_attack;
use dinar_attacks::threshold::LossThresholdAttack;
use dinar_data::catalog::{self, Profile};
use dinar_data::partition::{partition_dataset, Distribution};
use dinar_data::split::attack_split;
use dinar_fl::{FlConfig, FlSystem};
use dinar_nn::{models, optim::Adagrad, Model, ModelParams};
use dinar_tensor::Rng;

struct PipelineResult {
    global_auc: f64,
    upload_auc: f64,
    accuracy: f32,
}

fn run_pipeline(with_dinar: bool) -> PipelineResult {
    let mut rng = Rng::seed_from(1234);
    let dataset = catalog::purchase100(Profile::Mini)
        .generate(&mut rng)
        .expect("generation succeeds");
    let split = attack_split(&dataset, &mut rng).expect("split succeeds");
    let shards =
        partition_dataset(&split.train, 5, Distribution::Iid, &mut rng).expect("partition");
    let arch = |rng: &mut Rng| -> dinar_nn::Result<Model> { models::fcnn6(600, 100, 64, rng) };

    let mut builder = FlSystem::builder(FlConfig {
        local_epochs: 5,
        batch_size: 64,
        seed: 6,
    })
    .clients_from_shards(shards, arch, |_| Box::new(Adagrad::new(0.05)))
    .expect("clients built");
    if with_dinar {
        let config = DinarConfig::default();
        builder = builder.with_client_middleware(move |id| {
            vec![Box::new(DinarMiddleware::new(4, config, id as u64))]
        });
    }
    let mut system = builder.build().expect("system built");
    system.run(8).expect("training succeeds");

    // Capture one more client upload (what the server-side attacker sees).
    let global = system.global_params().clone();
    let client = &mut system.clients_mut()[0];
    client.receive_global(&global).expect("download");
    client.train_local().expect("local training");
    let upload: ModelParams = client.produce_update().expect("upload").params;
    let client_members = client.data().clone();

    let mut template = arch(&mut rng).expect("template");
    let members = split
        .train
        .subset(&(0..200).collect::<Vec<_>>())
        .expect("members");
    let global_auc = evaluate_attack(
        &mut LossThresholdAttack,
        system.global_params(),
        &mut template,
        &members,
        &split.test,
    )
    .expect("global attack")
    .auc;
    let upload_auc = evaluate_attack(
        &mut LossThresholdAttack,
        &upload,
        &mut template,
        &client_members,
        &split.test,
    )
    .expect("upload attack")
    .auc;
    let accuracy = system
        .mean_client_accuracy(&split.test)
        .expect("evaluation");
    PipelineResult {
        global_auc,
        upload_auc,
        accuracy,
    }
}

#[test]
fn undefended_fl_leaks_membership() {
    let result = run_pipeline(false);
    assert!(
        result.global_auc > 0.60,
        "undefended global model should leak: AUC {}",
        result.global_auc
    );
    assert!(
        result.upload_auc > 0.65,
        "undefended uploads should leak more: AUC {}",
        result.upload_auc
    );
    assert!(
        result.accuracy > 0.5,
        "undefended accuracy should be substantial: {}",
        result.accuracy
    );
}

#[test]
fn dinar_pins_attack_near_optimum_and_preserves_utility() {
    let undefended = run_pipeline(false);
    let defended = run_pipeline(true);
    assert!(
        defended.global_auc < 0.58,
        "DINAR global AUC should approach 50%: {}",
        defended.global_auc
    );
    assert!(
        defended.upload_auc < 0.60,
        "DINAR upload AUC should approach 50%: {}",
        defended.upload_auc
    );
    // Personalization keeps most of the utility (paper: within 1%; our
    // synthetic substitutes concede a few points — see EXPERIMENTS.md).
    assert!(
        defended.accuracy > undefended.accuracy * 0.8,
        "DINAR accuracy {} should stay near baseline {}",
        defended.accuracy,
        undefended.accuracy
    );
}

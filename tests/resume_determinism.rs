//! Mid-round resume determinism: a run killed after client *k* of a
//! round, checkpointed, and resumed into a freshly rebuilt system must
//! produce a final global model bit-identical to the uninterrupted run —
//! at every worker-pool width, because the resume image carries exact RNG
//! counter state, optimizer state, and the partial round's updates.
//!
//! These tests also run under `--features sanitize`.

use dinar_fl::ckpt::{decode_resume, encode_resume};
use dinar_fl::{FlConfig, FlSystem};
use dinar_nn::models::{self, Activation};
use dinar_nn::optim::Adam;
use dinar_tensor::{par, Rng, Tensor};
use std::sync::Mutex;

/// Serializes mutations of the process-global pool width across tests.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 3] = [1, 2, 4];

/// Runs `f` once per width in [`WIDTHS`] and returns the results in order,
/// restoring the default width afterwards.
fn per_width<T>(f: impl Fn() -> T) -> Vec<T> {
    let _guard = WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let results = WIDTHS
        .iter()
        .map(|&w| {
            par::set_threads(w);
            f()
        })
        .collect();
    par::reset_threads();
    results
}

fn build_system() -> FlSystem {
    let data = {
        let mut rng = Rng::seed_from(5);
        let mut features = Tensor::zeros(&[90, 2]);
        let mut labels = Vec::new();
        for i in 0..90 {
            let class = i % 2;
            let c = if class == 0 { -2.0 } else { 2.0 };
            features.set(&[i, 0], rng.normal_with(c, 0.6)).expect("set");
            features.set(&[i, 1], rng.normal_with(c, 0.6)).expect("set");
            labels.push(class);
        }
        dinar_data::Dataset::new(features, labels, &[2], 2).expect("dataset")
    };
    let mut rng = Rng::seed_from(9);
    let shards = dinar_data::partition::partition_dataset(
        &data,
        3,
        dinar_data::partition::Distribution::Iid,
        &mut rng,
    )
    .expect("partition");
    FlSystem::builder(FlConfig {
        local_epochs: 2,
        batch_size: 16,
        seed: 3,
    })
    .clients_from_shards(
        shards,
        |rng| models::mlp(&[2, 8, 2], Activation::ReLU, rng),
        // Adam carries per-tensor moments and a step counter, so any state
        // the resume image drops would surface as divergent bits.
        |_| Box::new(Adam::new(0.05)),
    )
    .expect("clients")
    .build()
    .expect("system")
}

fn global_bits(system: &FlSystem) -> Vec<u32> {
    system
        .global_params()
        .to_flat()
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

/// The uninterrupted reference: `rounds` full rounds.
fn straight_run(rounds: usize) -> Vec<u32> {
    let mut system = build_system();
    system.run(rounds).expect("straight run");
    global_bits(&system)
}

/// Kill-and-resume: one warm-up round, then the next round is stopped
/// after `k` clients, the image crosses bytes (the simulated kill), a
/// fresh system restores it and finishes the round plus one more.
fn resumed_run(k: usize, rounds_after: usize) -> Vec<u32> {
    let mut first = build_system();
    first.run(1).expect("warm-up round");
    first.begin_round_partial(k).expect("partial round");
    let bytes = encode_resume(&first.checkpoint()).expect("encode");
    drop(first); // the "killed" process

    let image = decode_resume(&bytes).expect("decode");
    let mut second = build_system();
    second.restore(image).expect("restore");
    assert!(second.has_pending_round());
    second.finish_round().expect("finish interrupted round");
    second.run(rounds_after).expect("post-resume rounds");
    global_bits(&second)
}

/// Killing after any client of the round changes nothing: the resumed
/// final model is bit-identical to the uninterrupted 3-round run, at
/// every pool width.
#[test]
fn resumed_run_is_bit_identical_at_every_width_and_kill_point() {
    let reference = per_width(|| straight_run(3));
    for k in 1..=3 {
        let resumed = per_width(|| resumed_run(k, 1));
        assert_eq!(
            reference, resumed,
            "kill after client {k} diverged from the uninterrupted run"
        );
    }
}

/// The widths also agree with each other — the checkpoint plane preserves
/// the repo-wide pool-width bit-identity contract.
#[test]
fn resume_bits_agree_across_widths() {
    let runs = per_width(|| resumed_run(2, 1));
    assert!(
        runs.windows(2).all(|w| w[0] == w[1]),
        "pool widths disagree after resume"
    );
}

/// A checkpoint taken *between* rounds (no pending partial round) resumes
/// into the same bits too.
#[test]
fn between_round_checkpoints_resume_bit_identically() {
    let reference = straight_run(3);
    let mut first = build_system();
    first.run(2).expect("two rounds");
    let bytes = encode_resume(&first.checkpoint()).expect("encode");
    drop(first);

    let mut second = build_system();
    second.restore(decode_resume(&bytes).expect("decode")).expect("restore");
    assert!(!second.has_pending_round());
    second.run(1).expect("final round");
    assert_eq!(reference, global_bits(&second));
}

//! Workspace lint gate: runs the `dinar-lint` ratchet as part of
//! `cargo test`, so a new violation of any repo invariant (L001–L007)
//! fails CI even if nobody ran the CLI.

use std::path::Path;

#[test]
fn lint_ratchet_holds() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (findings, regressions) =
        dinar_lint::check_against_baseline(root).expect("lint pass should run");
    assert!(
        regressions.is_empty(),
        "\nlint ratchet FAILED — {} (rule, file) count(s) rose above \
         lint-baseline.json:\n{}\n\ntotal findings now: {}.\n\
         Fix the new violations, or for intentional changes run\n    \
         cargo run -p dinar-lint -- --update-baseline\nand commit the \
         refreshed lint-baseline.json.\n",
        regressions.len(),
        regressions
            .iter()
            .map(|r| format!("  {r}"))
            .collect::<Vec<_>>()
            .join("\n"),
        findings.len(),
    );
}

#[test]
fn baseline_file_is_well_formed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join(dinar_lint::BASELINE_FILE);
    assert!(
        path.exists(),
        "{} must be committed at the workspace root",
        dinar_lint::BASELINE_FILE
    );
    dinar_lint::Baseline::load(&path).expect("committed baseline parses");
}

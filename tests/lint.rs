//! Workspace lint gate: runs the `dinar-lint` ratchet as part of
//! `cargo test`, so a new violation of any repo invariant (L001–L018)
//! fails CI even if nobody ran the CLI. The semantic rules L010–L016 and
//! the confinement rules L017/L018 are ratcheted at zero here (not via
//! the baseline), and the baseline file itself is checked for unknown
//! rule IDs and stale paths.

use std::path::Path;

#[test]
fn lint_ratchet_holds() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (findings, regressions) =
        dinar_lint::check_against_baseline(root).expect("lint pass should run");
    assert!(
        regressions.is_empty(),
        "\nlint ratchet FAILED — {} (rule, file) count(s) rose above \
         lint-baseline.json:\n{}\n\ntotal findings now: {}.\n\
         Fix the new violations, or for intentional changes run\n    \
         cargo run -p dinar-lint -- --update-baseline\nand commit the \
         refreshed lint-baseline.json.\n",
        regressions.len(),
        regressions
            .iter()
            .map(|r| format!("  {r}"))
            .collect::<Vec<_>>()
            .join("\n"),
        findings.len(),
    );
}

#[test]
fn no_bare_recv_in_fl_at_all() {
    // L008 rides the same ratchet as the other rules, but unlike the
    // debt-carrying rules it starts — and must stay — at zero: the
    // mid-round client-death hang was caused by exactly one bare `recv()`,
    // and the fix routed every dinar-fl wait through the deadline helper.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (findings, _) = dinar_lint::check_against_baseline(root).expect("lint pass should run");
    let l008: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == dinar_lint::rules::Rule::L008)
        .collect();
    assert!(
        l008.is_empty(),
        "bare mpsc recv crept back into dinar-fl:\n{}",
        l008.iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn no_param_clone_in_param_plane_at_all() {
    // L009 starts — and must stay — at zero: the zero-copy parameter plane
    // only holds if every snapshot in the defense/obfuscation/aggregation
    // modules is an explicit O(1) `share()`. One unexamined `.clone()`
    // silently reintroduces a full model copy per client per round.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (findings, _) = dinar_lint::check_against_baseline(root).expect("lint pass should run");
    let l009: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == dinar_lint::rules::Rule::L009)
        .collect();
    assert!(
        l009.is_empty(),
        "a deep params clone crept back into the parameter plane:\n{}",
        l009.iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn semantic_rules_stay_at_zero() {
    // L010–L016 run on the call-graph engine and start — and must stay —
    // at zero; they guard the invariants the paper's correctness rests on:
    //   L010  clip-then-noise ordering (the DP sensitivity bound)
    //   L011  every RNG stream derives from plumbed config
    //   L012  no panic reachable from the round loop / transport
    //   L013  one global Mutex acquisition order
    //   L014  no float accumulation over unordered iteration
    //   L015  no scalar normal() draws inside loops (use the bulk fills)
    //   L016  every defense transform reports to the privacy ledger
    use dinar_lint::rules::Rule;
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (findings, _) = dinar_lint::check_against_baseline(root).expect("lint pass should run");
    let semantic: Vec<_> = findings
        .iter()
        .filter(|f| {
            matches!(
                f.rule,
                Rule::L010
                    | Rule::L011
                    | Rule::L012
                    | Rule::L013
                    | Rule::L014
                    | Rule::L015
                    | Rule::L016
            )
        })
        .collect();
    assert!(
        semantic.is_empty(),
        "semantic rule violation(s) (fix them or justify with a \
         `lint: allow(RULE, reason)` at the site):\n{}",
        semantic
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn wire_codecs_stay_confined_at_zero() {
    // L017 starts — and must stay — at zero: every byte-level
    // encode/decode lives in the sanctioned wire module
    // (crates/tensor/src/wire.rs), whose codec paths convert integers with
    // checked `try_from`, never a silently-wrapping `as`. A second codec
    // elsewhere — or one wrapped cast inside the wire module — reopens the
    // truncated-length-header class of bug the decoder hardening closed.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (findings, _) = dinar_lint::check_against_baseline(root).expect("lint pass should run");
    let l017: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == dinar_lint::rules::Rule::L017)
        .collect();
    assert!(
        l017.is_empty(),
        "wire confinement violated:\n{}",
        l017.iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn bit_pattern_casts_stay_confined_at_zero() {
    // L018 starts — and must stay — at zero: every bit-pattern
    // reinterpretation between storage element types lives in the
    // sanctioned generic-storage module (crates/tensor/src/storage.rs),
    // whose Element impls are pinned by exact round-trip property tests.
    // A second `to_bit_pattern`/`from_bit_pattern` spelling (or a
    // `transmute`) elsewhere is an unaudited reinterpretation that can
    // silently diverge from the canonical one and break the
    // width-independent bit-identicality the checkpoint plane promises.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (findings, _) = dinar_lint::check_against_baseline(root).expect("lint pass should run");
    let l018: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == dinar_lint::rules::Rule::L018)
        .collect();
    assert!(
        l018.is_empty(),
        "element confinement violated:\n{}",
        l018.iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_file_is_well_formed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join(dinar_lint::BASELINE_FILE);
    assert!(
        path.exists(),
        "{} must be committed at the workspace root",
        dinar_lint::BASELINE_FILE
    );
    dinar_lint::Baseline::load(&path).expect("committed baseline parses");
}

#[test]
fn baseline_has_no_unknown_rules_or_stale_paths() {
    // A typo'd rule ID would allowlist nothing, and an entry for a deleted
    // or renamed file is dead debt that hides a real regression budget —
    // both should fail loudly instead of rotting in the committed file.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let baseline = dinar_lint::Baseline::load(&root.join(dinar_lint::BASELINE_FILE))
        .expect("committed baseline parses");
    let mut problems = Vec::new();
    for (rule, file, count) in baseline.iter() {
        if dinar_lint::rules::Rule::from_id(rule).is_none() {
            problems.push(format!("unknown rule ID `{rule}` (entry for {file})"));
        }
        if !root.join(file).exists() {
            problems.push(format!("stale path `{file}` under `{rule}` no longer exists"));
        }
        if count == 0 {
            problems.push(format!("zero-count entry `{rule}` / `{file}` should be dropped"));
        }
    }
    assert!(
        problems.is_empty(),
        "lint-baseline.json needs attention (run `cargo run -p dinar-lint -- \
         --update-baseline`):\n{}",
        problems
            .iter()
            .map(|p| format!("  {p}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! # dinar-suite
//!
//! Umbrella crate of the DINAR reproduction: re-exports every workspace
//! crate under one roof so the repository-level examples and integration
//! tests (and downstream users who want everything) can depend on a single
//! crate.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `dinar-tensor` | dense tensors, RNG, allocation accounting |
//! | [`nn`] | `dinar-nn` | layers, models, losses, optimizers |
//! | [`data`] | `dinar-data` | synthetic datasets, splits, partitioning |
//! | [`fl`] | `dinar-fl` | the federated learning engine |
//! | [`attacks`] | `dinar-attacks` | membership inference attacks |
//! | [`defenses`] | `dinar-defenses` | LDP, CDP, WDP, GC, SA baselines |
//! | [`consensus`] | `dinar-consensus` | Byzantine-tolerant layer voting |
//! | [`metrics`] | `dinar-metrics` | AUC, JS divergence, cost tracking |
//! | [`telemetry`] | `dinar-telemetry` | spans, metrics registry, profiling export |
//! | [`core`] | `dinar` | the DINAR middleware itself |
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete end-to-end run: synthesize a
//! dataset, train undefended FL, attack it, then attach DINAR and attack
//! again.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dinar as core;
pub use dinar_attacks as attacks;
pub use dinar_consensus as consensus;
pub use dinar_data as data;
pub use dinar_defenses as defenses;
pub use dinar_fl as fl;
pub use dinar_metrics as metrics;
pub use dinar_nn as nn;
pub use dinar_telemetry as telemetry;
pub use dinar_tensor as tensor;
